"""Guessing undetermined characters (the future-work exploration)."""

import numpy as np
import pytest

from repro.core.guess import classify_marker_contexts, guess_markers
from repro.core.marker import MARKER_BASE, from_bytes
from repro.core.marker_inflate import marker_inflate
from repro.core.sync import find_block_start
from repro.data import classify_fastq_bytes, gzip_zlib, synthetic_fastq
from repro.deflate.inflate import inflate


def mark(text: str) -> np.ndarray:
    """'?' in ``text`` become distinct markers."""
    arr = from_bytes(text.encode())
    j = 0
    for i, ch in enumerate(text):
        if ch == "?":
            arr[i] = MARKER_BASE + j
            j += 1
    return arr


class TestClassification:
    def test_dna_context_constrains_to_nucleotides(self):
        syms = mark("\nACGTAC?TACGT\n")
        cands = classify_marker_contexts(syms)
        (cand,) = cands.values()
        assert cand <= set(b"ACGTN")

    def test_quality_context_excludes_dna(self):
        syms = mark("\n!#%&()*+,-.?/:;<=>!#%&()\n")
        cands = classify_marker_contexts(syms)
        (cand,) = cands.values()
        assert not (cand & set(b"ACGTN"))

    def test_repeated_marker_intersects_constraints(self):
        """The same marker in a DNA and a quality context -> empty or
        tiny candidate set (the consistency constraint)."""
        text = "\nACGTAC?TACGT\n!#%&()*+,-.?!#%&()!\n"
        arr = from_bytes(text.encode())
        positions = [i for i, ch in enumerate(text) if ch == "?"]
        for p in positions:
            arr[p] = MARKER_BASE + 7  # same marker twice
        cands = classify_marker_contexts(arr)
        assert len(cands[7]) <= 1

    def test_no_markers(self):
        assert classify_marker_contexts(from_bytes(b"ACGT\n")) == {}


class TestGuessing:
    def test_no_markers_is_identity(self):
        syms = from_bytes(b"@h\nACGT\n+\nIIII\n")
        rep = guess_markers(syms)
        assert (rep.symbols == syms).all()
        assert len(rep.guessed_positions) == 0

    def test_all_markers_replaced(self):
        syms = mark("\nACGT?CGT??GT\n")
        rep = guess_markers(syms)
        assert (rep.symbols < MARKER_BASE).all()
        assert len(rep.guessed_positions) == 3

    def test_dna_gaps_guessed_as_nucleotides(self):
        syms = mark("\nACGTACGTAC?TACGTACG?ACGT\n")
        rep = guess_markers(syms)
        for pos in rep.guessed_positions:
            assert rep.symbols[pos] in set(b"ACGTN")

    def test_candidate_soundness_on_real_stream(self):
        """On a real marker stream, candidate sets virtually always
        contain the true byte (sampled)."""
        text = synthetic_fastq(2500, read_length=100, seed=5,
                               quality_profile="illumina", barcode="ATCACG")
        gz = gzip_zlib(text, 6)
        sync = find_block_start(gz, start_bit=8 * (len(gz) // 3))
        full = inflate(gz, start_bit=80)
        target = next(b for b in full.blocks if b.start_bit == sync.bit_offset)
        res = marker_inflate(gz, start_bit=sync.bit_offset)
        truth = np.frombuffer(text[target.out_start :], np.uint8).astype(np.int32)
        cands = classify_marker_contexts(res.symbols)
        marker_pos = np.flatnonzero(res.symbols >= MARKER_BASE)[:5000]
        ok = total = 0
        for pos in marker_pos.tolist():
            j = int(res.symbols[pos]) - MARKER_BASE
            cand = cands.get(j, set())
            if cand:
                total += 1
                ok += int(truth[pos]) in cand
        assert ok / total > 0.95

    def test_accuracy_bounds_on_real_stream(self):
        """The negative result, quantified: DNA accuracy approaches the
        25 % cap for uniform random DNA (so guessing cannot rescue
        sequences); quality beats its uniform baseline; headers are
        unrecoverable (their bytes never appear as literals — Fig 4)."""
        text = synthetic_fastq(2500, read_length=100, seed=5,
                               quality_profile="illumina", barcode="ATCACG")
        gz = gzip_zlib(text, 6)
        sync = find_block_start(gz, start_bit=8 * (len(gz) // 3))
        full = inflate(gz, start_bit=80)
        target = next(b for b in full.blocks if b.start_bit == sync.bit_offset)
        res = marker_inflate(gz, start_bit=sync.bit_offset)
        truth = np.frombuffer(text[target.out_start :], np.uint8).astype(np.int32)
        types = classify_fastq_bytes(text)[target.out_start :]

        rep = guess_markers(res.symbols)
        mp = rep.guessed_positions
        assert (rep.symbols < MARKER_BASE).all()

        dna_pos = mp[types[mp] == 1]
        qual_pos = mp[types[mp] == 3]
        dna_acc = float((rep.symbols[dna_pos] == truth[dna_pos]).mean())
        qual_acc = float((rep.symbols[qual_pos] == truth[qual_pos]).mean())
        # DNA: within [0.15, 0.35] around the 0.25 information cap.
        assert 0.15 < dna_acc < 0.35
        # Quality: above a uniform guess over the ~25-symbol alphabet.
        assert qual_acc > 0.10
