"""Marker alphabet: construction, resolution algebra, conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import marker
from repro.errors import ReproError


class TestWindowConstruction:
    def test_undetermined_window_shape(self):
        w = marker.undetermined_window()
        assert len(w) == 32768
        assert w[0] == marker.MARKER_BASE
        assert w[-1] == marker.MARKER_BASE + 32767

    def test_symbols_partition(self):
        assert marker.NUM_SYMBOLS == 256 + 32768


class TestPredicates:
    def test_is_marker(self):
        arr = np.array([0, 255, 256, 33023], dtype=np.int32)
        assert marker.is_marker(arr).tolist() == [False, False, True, True]

    def test_marker_positions(self):
        arr = np.array([65, marker.MARKER_BASE + 5, marker.MARKER_BASE], dtype=np.int32)
        assert marker.marker_positions(arr).tolist() == [-1, 5, 0]

    def test_count_markers(self):
        arr = np.array([1, 2, 300, 400, 500], dtype=np.int32)
        assert marker.count_markers(arr) == 3
        assert marker.count_markers(np.array([], dtype=np.int32)) == 0


class TestResolve:
    def test_resolves_markers_only(self):
        window = np.arange(32768, dtype=np.int32) % 256
        syms = np.array([65, marker.MARKER_BASE + 10, marker.MARKER_BASE + 300], dtype=np.int32)
        out = marker.resolve(syms, window)
        assert out.tolist() == [65, 10, 300 % 256]

    def test_does_not_mutate_input(self):
        syms = np.array([marker.MARKER_BASE], dtype=np.int32)
        window = np.zeros(32768, dtype=np.int32)
        marker.resolve(syms, window)
        assert syms[0] == marker.MARKER_BASE

    def test_chained_resolution(self):
        """Markers in the window propagate one link (the pass-2a chain)."""
        window = np.full(32768, marker.MARKER_BASE + 7, dtype=np.int32)
        syms = np.array([marker.MARKER_BASE + 1], dtype=np.int32)
        out = marker.resolve(syms, window)
        assert out[0] == marker.MARKER_BASE + 7

    def test_wrong_window_size_raises(self):
        with pytest.raises(ReproError):
            marker.resolve(np.array([0]), np.zeros(100, dtype=np.int32))

    @given(st.lists(st.integers(min_value=0, max_value=marker.NUM_SYMBOLS - 1), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_idempotent_on_concrete_window(self, values):
        """Resolving with a fully concrete window leaves no markers and
        resolving again is the identity."""
        rng = np.random.default_rng(0)
        window = rng.integers(0, 256, size=32768).astype(np.int32)
        syms = np.asarray(values, dtype=np.int32)
        once = marker.resolve(syms, window)
        assert marker.count_markers(once) == 0
        twice = marker.resolve(once, window)
        assert (once == twice).all()


class TestByteConversion:
    def test_to_bytes_concrete(self):
        syms = np.frombuffer(b"ACGT", dtype=np.uint8).astype(np.int32)
        assert marker.to_bytes(syms) == b"ACGT"

    def test_to_bytes_raises_on_markers(self):
        syms = np.array([65, marker.MARKER_BASE], dtype=np.int32)
        with pytest.raises(ReproError, match="unresolved"):
            marker.to_bytes(syms)

    def test_to_bytes_placeholder(self):
        """The paper's '?' display convention (Figure 1)."""
        syms = np.array([65, marker.MARKER_BASE + 3, 67], dtype=np.int32)
        assert marker.to_bytes(syms, placeholder=ord("?")) == b"A?C"

    def test_from_bytes_round_trip(self):
        data = bytes(range(256))
        assert marker.to_bytes(marker.from_bytes(data)) == data
