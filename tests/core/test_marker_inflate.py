"""Marker-domain inflate: equivalence with byte inflate, propagation."""

import numpy as np
import pytest

from repro.core import marker
from repro.core.marker_inflate import marker_inflate
from repro.deflate.inflate import inflate
from tests.conftest import zlib_raw


@pytest.fixture(scope="module")
def stream(fastq_medium):
    raw = zlib_raw(fastq_medium, 6)
    full = inflate(raw)
    assert len(full.blocks) >= 4, "fixture must be multi-block"
    return raw, full, fastq_medium


class TestKnownContextEquivalence:
    def test_from_start_no_markers(self, stream):
        raw, full, text = stream
        result = marker_inflate(raw, start_bit=0)
        # A valid stream never references before its own start, so even
        # an undetermined seed yields a marker-free output.
        assert marker.count_markers(result.symbols) == 0
        assert marker.to_bytes(result.symbols) == text

    def test_mid_stream_with_true_window(self, stream):
        raw, full, text = stream
        b = full.blocks[2]
        window = text[: b.out_start][-32768:]
        result = marker_inflate(raw, start_bit=b.start_bit, window=window)
        assert marker.count_markers(result.symbols) == 0
        assert marker.to_bytes(result.symbols) == text[b.out_start :]

    def test_block_accounting_matches_byte_domain(self, stream):
        raw, full, text = stream
        result = marker_inflate(raw, start_bit=0)
        assert [(b.start_bit, b.out_start, b.out_end) for b in result.blocks] == [
            (b.start_bit, b.out_start, b.out_end) for b in full.blocks
        ]
        assert result.end_bit == full.end_bit
        assert result.final_seen


class TestUndeterminedContext:
    def test_markers_resolve_to_truth(self, stream):
        """THE core invariant: decode with undetermined context, then
        resolve markers with the true context -> exact bytes."""
        raw, full, text = stream
        b = full.blocks[1]
        result = marker_inflate(raw, start_bit=b.start_bit, window=None)
        assert marker.count_markers(result.symbols) > 0  # something to resolve
        true_window = np.frombuffer(
            text[: b.out_start][-32768:], dtype=np.uint8
        ).astype(np.int32)
        resolved = marker.resolve(result.symbols, true_window)
        assert marker.to_bytes(resolved) == text[b.out_start :]

    def test_marker_positions_name_true_context(self, stream):
        """Every marker U_j must equal the true context byte at j."""
        raw, full, text = stream
        b = full.blocks[1]
        result = marker_inflate(raw, start_bit=b.start_bit, window=None)
        context = text[: b.out_start][-32768:]
        tail_truth = text[b.out_start :]
        syms = result.symbols
        positions = np.flatnonzero(syms >= marker.MARKER_BASE)[:500]
        for p in positions:
            j = int(syms[p]) - marker.MARKER_BASE
            assert context[j] == tail_truth[p]

    def test_concrete_symbols_already_correct(self, stream):
        raw, full, text = stream
        b = full.blocks[1]
        result = marker_inflate(raw, start_bit=b.start_bit, window=None)
        syms = result.symbols
        truth = np.frombuffer(text[b.out_start :], dtype=np.uint8).astype(np.int32)
        concrete = syms < marker.MARKER_BASE
        assert (syms[concrete] == truth[concrete]).all()

    def test_final_window_field(self, stream):
        raw, full, text = stream
        result = marker_inflate(raw, start_bit=0)
        assert marker.to_bytes(result.window) == text[-32768:]


class TestStreamingMode:
    def test_streaming_equals_full(self, stream):
        raw, full, text = stream
        b = full.blocks[1]
        chunks = []
        positions = []

        def sink(symbols, start):
            chunks.append(list(symbols))
            positions.append(start)

        res_stream = marker_inflate(
            raw, start_bit=b.start_bit, window=None, sink=sink, flush_symbols=5000
        )
        res_full = marker_inflate(raw, start_bit=b.start_bit, window=None)
        flat = [s for c in chunks for s in c]
        assert flat == res_full.symbols.tolist()
        assert res_stream.symbols is None
        assert res_stream.total_output == res_full.total_output
        # Start positions must be contiguous.
        acc = 0
        for pos, c in zip(positions, chunks):
            assert pos == acc
            acc += len(c)

    def test_streaming_window_matches(self, stream):
        raw, full, text = stream
        res = marker_inflate(raw, start_bit=0, sink=lambda *_: None, flush_symbols=4096)
        assert marker.to_bytes(res.window) == text[-32768:]


class TestStops:
    def test_stop_bit_at_block_boundary(self, stream):
        raw, full, text = stream
        stop = full.blocks[2].start_bit
        result = marker_inflate(raw, start_bit=0, stop_bit=stop)
        assert result.end_bit == stop
        assert result.total_output == full.blocks[2].out_start
        assert marker.to_bytes(result.symbols) == text[: full.blocks[2].out_start]

    def test_max_output_truncates(self, stream):
        raw, full, text = stream
        result = marker_inflate(raw, start_bit=0, max_output=1000)
        assert result.truncated
        assert result.total_output >= 1000
        assert marker.to_bytes(result.symbols)[:1000] == text[:1000]

    def test_max_blocks(self, stream):
        raw, full, text = stream
        result = marker_inflate(raw, start_bit=0, max_blocks=2)
        assert len(result.blocks) == 2
        assert not result.final_seen


class TestSeededWindows:
    def test_short_window_left_padded_with_markers(self, stream):
        raw, full, text = stream
        b = full.blocks[1]
        # Provide only the last 100 bytes of true context: references
        # further back must surface as markers, aligned correctly.
        short = text[: b.out_start][-100:]
        result = marker_inflate(raw, start_bit=b.start_bit, window=short)
        true_window = np.frombuffer(
            text[: b.out_start][-32768:], dtype=np.uint8
        ).astype(np.int32)
        resolved = marker.resolve(result.symbols, true_window)
        assert marker.to_bytes(resolved) == text[b.out_start :]

    def test_invalid_symbol_in_window(self):
        with pytest.raises(ValueError):
            marker_inflate(b"\x00\x00", window=[999999])
