"""Property-based verification of THE core invariant.

For any text, any compression level, and any block boundary: decoding
from that boundary with a fully undetermined context and resolving the
markers against the true 32 KiB context reproduces the original bytes
exactly.  This is the correctness foundation of the entire paper.
"""

import zlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.marker import MARKER_BASE, resolve, to_bytes
from repro.core.marker_inflate import marker_inflate
from repro.deflate.inflate import inflate


def zlib_raw(data: bytes, level: int) -> bytes:
    co = zlib.compressobj(level, zlib.DEFLATED, -15)
    return co.compress(data) + co.flush()


# Caps keep worst-case inputs ~400 KB so hypothesis shrink cycles stay
# tractable on one core.
_line = st.one_of(
    st.text(alphabet="ACGT", min_size=20, max_size=100),
    st.text(alphabet="!#$%&'()*+,-./012345", min_size=20, max_size=100),
    st.text(alphabet="@:SIM0123456789 ", min_size=10, max_size=40),
)
_text = st.lists(_line, min_size=50, max_size=150).map(
    lambda ls: ("\n".join(ls) + "\n").encode()
)


class TestResolutionInvariant:
    @given(
        doc=_text,
        reps=st.integers(min_value=2, max_value=40),
        level=st.sampled_from([1, 4, 6, 9]),
        block_pick=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=20, deadline=None)
    def test_undetermined_decode_resolves_to_truth(self, doc, reps, level, block_pick):
        text = doc * reps
        raw = zlib_raw(text, level)
        full = inflate(raw)
        if len(full.blocks) < 2:
            return  # single-block stream: nothing to start from
        # Pick a non-first block.
        b = full.blocks[1 + block_pick % (len(full.blocks) - 1)]
        res = marker_inflate(raw, start_bit=b.start_bit, window=None)
        context = np.asarray(
            [256 + i for i in range(32768 - min(32768, b.out_start))]
            + list(text[: b.out_start][-32768:]),
            dtype=np.int32,
        )
        resolved = resolve(res.symbols, context)
        # Any marker surviving must map to unknowable (pre-stream)
        # positions — impossible in a valid stream, so none survive
        # when the context is fully available.
        if b.out_start >= 32768:
            assert to_bytes(resolved) == text[b.out_start :]
        else:
            mask = resolved < MARKER_BASE
            truth = np.frombuffer(text[b.out_start :], np.uint8).astype(np.int32)
            assert (resolved[mask] == truth[mask]).all()

    @given(doc=_text, level=st.sampled_from([1, 6, 9]))
    @settings(max_examples=10, deadline=None)
    def test_concrete_symbols_always_correct(self, doc, level):
        """Even unresolved, every *concrete* symbol is already right."""
        text = doc * 20
        raw = zlib_raw(text, level)
        full = inflate(raw)
        if len(full.blocks) < 2:
            return
        b = full.blocks[1]
        res = marker_inflate(raw, start_bit=b.start_bit, window=None)
        truth = np.frombuffer(text[b.out_start :], np.uint8).astype(np.int32)
        mask = res.symbols < MARKER_BASE
        assert (res.symbols[mask] == truth[mask]).all()
