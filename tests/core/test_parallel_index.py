"""Parallel index construction (pugz x ref [11] synthesis)."""

import pytest

from repro.core.parallel_index import pugz_build_index
from repro.data import gzip_zlib


class TestPugzBuildIndex:
    @pytest.fixture(scope="class")
    def built(self, fastq_medium):
        gz = gzip_zlib(fastq_medium, 6)
        out, idx = pugz_build_index(gz, n_chunks=5)
        return fastq_medium, gz, out, idx

    def test_data_exact(self, built):
        text, gz, out, idx = built
        assert out == text

    def test_index_addresses_everything(self, built):
        text, gz, out, idx = built
        assert idx.usize == len(text)
        for off in (0, 1000, len(text) // 2, len(text) - 500):
            assert idx.read_at(gz, off, 200) == text[off : off + 200]

    def test_checkpoints_are_chunk_boundaries(self, built):
        text, gz, out, idx = built
        assert len(idx.checkpoints) >= 2
        for cp in idx.checkpoints[1:]:
            assert len(cp.window) == 32768
            assert cp.window == text[cp.uoffset - 32768 : cp.uoffset]

    def test_serialisation_round_trip(self, built):
        from repro.index import GzipIndex

        text, gz, out, idx = built
        idx2 = GzipIndex.from_bytes(idx.to_bytes())
        off = len(text) * 2 // 3
        assert idx2.read_at(gz, off, 123) == text[off : off + 123]

    def test_more_chunks_denser_index(self, fastq_medium):
        gz = gzip_zlib(fastq_medium, 6)
        _, sparse = pugz_build_index(gz, n_chunks=2)
        _, dense = pugz_build_index(gz, n_chunks=8)
        assert len(dense.checkpoints) >= len(sparse.checkpoints)

    def test_multi_member(self, fastq_small):
        import gzip as stdlib_gzip

        from repro.index.zran import CHECKPOINT_MEMBER

        gz = stdlib_gzip.compress(fastq_small[:1000]) + stdlib_gzip.compress(
            fastq_small[1000:]
        )
        out, idx = pugz_build_index(gz, n_chunks=2)
        assert out == fastq_small
        assert idx.usize == len(fastq_small)
        members = [cp for cp in idx.checkpoints if cp.kind == CHECKPOINT_MEMBER]
        assert len(members) == 2
        assert members[1].uoffset == 1000
        # A read spanning the member seam must stitch correctly.
        assert idx.read_at(gz, 900, 200) == fastq_small[900:1100]
