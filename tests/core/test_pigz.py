"""pigz-style parallel compression: compatibility, ratio, round trips."""

import gzip as stdlib_gzip
import zlib

import pytest

from repro.core.pigz import pigz_compress
from repro.core.pugz import pugz_decompress
from repro.deflate.deflate import deflate_compress
from repro.deflate.gzipfmt import gzip_unwrap
from repro.deflate.lz77 import parse_lz77


class TestCompatibility:
    def test_stdlib_decompresses(self, fastq_small):
        pg = pigz_compress(fastq_small, 6, chunk_size=40_000)
        assert stdlib_gzip.decompress(pg) == fastq_small

    def test_our_unwrap_decompresses_with_crc(self, fastq_small):
        pg = pigz_compress(fastq_small, 6, chunk_size=40_000)
        assert gzip_unwrap(pg, verify=True) == fastq_small

    def test_pugz_decompresses_pigz(self, fastq_small):
        """The full parallel circle: parallel compress, parallel
        decompress, byte exact."""
        pg = pigz_compress(fastq_small, 6, chunk_size=30_000)
        assert pugz_decompress(pg, n_chunks=3, verify=True) == fastq_small

    @pytest.mark.parametrize("level", [1, 6, 9])
    def test_levels(self, level, dna_100k):
        pg = pigz_compress(dna_100k, level, chunk_size=30_000)
        assert stdlib_gzip.decompress(pg) == dna_100k

    def test_single_chunk_input(self):
        data = b"short input" * 10
        pg = pigz_compress(data, 6)
        assert stdlib_gzip.decompress(pg) == data

    def test_empty_input(self):
        pg = pigz_compress(b"")
        assert stdlib_gzip.decompress(pg) == b""

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_executors(self, executor, fastq_small):
        pg = pigz_compress(fastq_small, 6, chunk_size=50_000, executor=executor)
        assert stdlib_gzip.decompress(pg) == fastq_small

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            pigz_compress(b"x", chunk_size=10)


class TestRatio:
    def test_overhead_vs_sequential_tiny(self, fastq_medium):
        """pigz overhead over the sequential encoder stays < 1 %."""
        data = fastq_medium[:600_000]
        seq = len(deflate_compress(data, 6))
        par = len(pigz_compress(data, 6, chunk_size=100_000)) - 18  # container
        assert par < seq * 1.01

    def test_dictionary_preserves_cross_chunk_matches(self):
        """A repeated pattern spanning a chunk boundary must still be
        matched (the dictionary's whole purpose)."""
        unit = b"SPANNINGPATTERN-0123456789abcdefghij"
        data = unit * 4000  # ~144 KB, crosses a 100 KB chunk boundary
        with_dict = pigz_compress(data, 6, chunk_size=100_000)
        # Compare against chunking *without* dictionary: compress the
        # two chunks independently as members.
        a = stdlib_gzip.compress(data[:100_000], 6)
        b = stdlib_gzip.compress(data[100_000:], 6)
        assert len(with_dict) < len(a) + len(b)
        assert stdlib_gzip.decompress(with_dict) == data


class TestDictionaryParsing:
    def test_tokens_only_for_payload(self):
        dictionary = b"ABCDEFGH" * 100
        payload = b"ABCDEFGH" * 50
        tokens = parse_lz77(payload, 6, dictionary=dictionary)
        total = sum(t.length for t in tokens)
        assert total == len(payload)

    def test_matches_reach_into_dictionary(self):
        dictionary = b"UNIQUESTRINGCONTENT" * 3
        payload = b"UNIQUESTRINGCONTENT"
        tokens = parse_lz77(payload, 6, dictionary=dictionary)
        assert any(not t.is_literal for t in tokens)

    def test_empty_dictionary_equals_plain(self, dna_100k):
        data = dna_100k[:20_000]
        a = parse_lz77(data, 6)
        b = parse_lz77(data, 6, dictionary=b"")
        assert list(a.offsets()) == list(b.offsets())
        assert list(a.values()) == list(b.values())

    def test_dictionary_decode_with_zlib(self):
        """zlib with setDictionary decodes our dictionary-parsed stream."""
        from repro.deflate.deflate import compress_tokens

        dictionary = b"the quick brown fox jumps over the lazy dog " * 20
        payload = b"the quick brown fox leaps over the lazy dog!"
        tokens = parse_lz77(payload, 6, dictionary=dictionary)
        raw = compress_tokens(payload, tokens)
        d = zlib.decompressobj(wbits=-15, zdict=dictionary)
        assert d.decompress(raw) == payload
