"""The two-pass parallel decompressor: exactness above all."""

import gzip as stdlib_gzip

import pytest

from repro.core.pugz import pugz_decompress, pugz_decompress_payload
from repro.data import fastq_like, random_dna, synthetic_fastq
from repro.deflate.deflate import gzip_compress
from repro.deflate.gzipfmt import parse_gzip_header
from repro.errors import GzipFormatError


class TestExactness:
    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 4, 7])
    def test_chunk_counts(self, n_chunks, fastq_medium, fastq_medium_gz6):
        out = pugz_decompress(fastq_medium_gz6, n_chunks=n_chunks)
        assert out == fastq_medium

    @pytest.mark.parametrize("level", [1, 6, 9])
    def test_compression_levels(self, level, fastq_medium):
        gz = stdlib_gzip.compress(fastq_medium, level, mtime=0)
        assert pugz_decompress(gz, n_chunks=3) == fastq_medium

    def test_own_compressor_output(self, fastq_small):
        gz = gzip_compress(fastq_small * 4, 6)
        assert pugz_decompress(gz, n_chunks=3) == fastq_small * 4

    def test_dna_only_file(self):
        dna = random_dna(600_000, seed=77)
        gz = stdlib_gzip.compress(dna, 6)
        assert pugz_decompress(gz, n_chunks=4) == dna

    def test_fastq_like_file(self, fastq_like_1m):
        gz = stdlib_gzip.compress(fastq_like_1m, 6)
        assert pugz_decompress(gz, n_chunks=3) == fastq_like_1m

    def test_general_ascii_text(self, mixed_text):
        gz = stdlib_gzip.compress(mixed_text, 6)
        assert pugz_decompress(gz, n_chunks=3) == mixed_text

    def test_tiny_file(self):
        gz = stdlib_gzip.compress(b"tiny", 6)
        assert pugz_decompress(gz, n_chunks=4) == b"tiny"

    def test_empty_file(self):
        gz = stdlib_gzip.compress(b"", 6)
        assert pugz_decompress(gz, n_chunks=2) == b""

    def test_matches_stdlib_on_weak_persona(self):
        text = synthetic_fastq(1500, read_length=100, seed=5, quality_profile="safe")
        gz = gzip_compress(text, 1, min_match=8)
        assert pugz_decompress(gz, n_chunks=3) == stdlib_gzip.decompress(gz) == text


class TestExecutors:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_executor_kinds(self, executor, fastq_medium, fastq_medium_gz6):
        assert pugz_decompress(fastq_medium_gz6, n_chunks=3, executor=executor) == fastq_medium

    def test_process_executor(self, fastq_small):
        text = fastq_small * 3
        gz = stdlib_gzip.compress(text, 6)
        assert pugz_decompress(gz, n_chunks=2, executor="process") == text

    def test_unknown_executor(self, fastq_medium_gz6):
        with pytest.raises(ValueError):
            pugz_decompress(fastq_medium_gz6, executor="quantum")


class TestVerification:
    def test_crc_verify_accepts_good_file(self, fastq_medium, fastq_medium_gz6):
        assert pugz_decompress(fastq_medium_gz6, n_chunks=3, verify=True) == fastq_medium

    def test_crc_verify_rejects_corrupt_trailer(self, fastq_medium_gz6):
        bad = bytearray(fastq_medium_gz6)
        bad[-6] ^= 0xFF  # CRC field
        with pytest.raises(GzipFormatError, match="CRC"):
            pugz_decompress(bytes(bad), n_chunks=2, verify=True)

    def test_isize_mismatch(self, fastq_medium_gz6):
        bad = bytearray(fastq_medium_gz6)
        bad[-1] ^= 0xFF
        with pytest.raises(GzipFormatError, match="ISIZE"):
            pugz_decompress(bytes(bad), n_chunks=2, verify=True)


class TestMultiMember:
    def test_two_members(self, fastq_medium):
        a, b = fastq_medium[:400_000], fastq_medium[400_000:]
        gz = stdlib_gzip.compress(a, 6) + stdlib_gzip.compress(b, 9)
        out, report = pugz_decompress(gz, n_chunks=3, return_report=True)
        assert out == fastq_medium
        assert report.members == 2

    def test_many_small_members(self, fastq_small):
        parts = [fastq_small[i : i + 40_000] for i in range(0, len(fastq_small), 40_000)]
        gz = b"".join(stdlib_gzip.compress(p, 6) for p in parts)
        assert pugz_decompress(gz, n_chunks=2, verify=True) == fastq_small


class TestReport:
    def test_report_shape(self, fastq_medium, fastq_medium_gz6):
        out, report = pugz_decompress(fastq_medium_gz6, n_chunks=4, return_report=True)
        assert report.output_size == len(fastq_medium)
        assert len(report.chunk_output_sizes) == len(report.chunks)
        assert sum(report.chunk_output_sizes) == len(fastq_medium)
        assert report.chunk_marker_counts[0] == 0
        if len(report.chunks) > 1:
            assert any(c > 0 for c in report.chunk_marker_counts[1:])
        assert report.total_seconds > 0

    def test_report_end_bit_is_payload_end(self, fastq_medium_gz6):
        out, report = pugz_decompress(fastq_medium_gz6, n_chunks=2, return_report=True)
        payload_end = (report.end_bit + 7) // 8
        assert payload_end == len(fastq_medium_gz6) - 8


class TestPayloadLevel:
    def test_raw_payload_api(self, fastq_medium):
        import zlib

        co = zlib.compressobj(6, zlib.DEFLATED, -15)
        raw = co.compress(fastq_medium) + co.flush()
        out = pugz_decompress_payload(raw, 0, 8 * len(raw), n_chunks=3)
        assert out == fastq_medium

    def test_payload_inside_container(self, fastq_medium, fastq_medium_gz6):
        start, *_ = parse_gzip_header(fastq_medium_gz6)
        out = pugz_decompress_payload(
            fastq_medium_gz6, 8 * start, 8 * (len(fastq_medium_gz6) - 8), n_chunks=2
        )
        assert out == fastq_medium
