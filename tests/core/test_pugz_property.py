"""Property-based exactness of the parallel decompressor."""

import gzip as stdlib_gzip
import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pugz import pugz_decompress
from repro.core.windowed import pugz_decompress_windowed

# Structured text generators that produce multi-block streams with
# varied match/literal regimes.
# Size caps keep the worst-case input ~600 KB: hypothesis may run a
# shrink cycle of dozens of decompressions, so per-example cost must
# stay in the ~1 s range on a single core.
_line = st.one_of(
    st.text(alphabet="ACGT", min_size=10, max_size=80),
    st.text(alphabet="!#$%&'()*+,-./0123456789", min_size=10, max_size=80),
    st.text(alphabet="abcdefghij ", min_size=5, max_size=40),
)
_document = st.lists(_line, min_size=30, max_size=120).map(
    lambda lines: ("\n".join(lines) + "\n").encode()
)


class TestPugzProperty:
    @given(
        _document,
        st.integers(min_value=1, max_value=60),
        st.sampled_from([1, 5, 9]),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_exactness(self, doc, reps, level, n_chunks):
        text = doc * reps
        gz = stdlib_gzip.compress(text, level, mtime=0)
        assert pugz_decompress(gz, n_chunks=n_chunks) == text

    @given(
        _document,
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_windowed_exactness(self, doc, reps, stripe):
        text = doc * reps
        gz = stdlib_gzip.compress(text, 6, mtime=0)
        parts = []
        pugz_decompress_windowed(gz, parts.append, n_chunks=5, stripe_chunks=stripe)
        assert b"".join(parts) == text

    @given(st.lists(_document, min_size=1, max_size=3))
    @settings(max_examples=10, deadline=None)
    def test_multi_member_exactness(self, docs):
        gz = b"".join(stdlib_gzip.compress(d * 15, 6, mtime=0) for d in docs)
        truth = b"".join(d * 15 for d in docs)
        assert pugz_decompress(gz, n_chunks=2) == truth
