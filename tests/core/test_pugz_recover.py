"""Fault-tolerant two-pass decompression (``on_error="recover"``)."""

import gzip as stdlib_gzip
import warnings

import numpy as np
import pytest

from repro.core.pugz import HOLE_BYTE, PugzHole, pugz_decompress, pugz_decompress_payload
from repro.deflate.inflate import inflate
from repro.errors import GzipFormatError, ReproError
from repro.robustness import default_corpora

# A whole-byte corruption at this offset of the deterministic
# ``fastq-multiblock`` corpus lands mid-stream, breaks decoding (raise
# mode errors), and leaves later blocks intact for resync.  The test
# verifies those preconditions instead of trusting the constant.
FAULT_POS = 2325


@pytest.fixture(scope="module")
def corpus():
    return default_corpora()["fastq-multiblock"]


@pytest.fixture(scope="module")
def faulted(corpus):
    _, gz = corpus
    buf = bytearray(gz)
    buf[FAULT_POS] ^= 0xFF
    return bytes(buf)


class TestRecoverMode:
    def test_raise_mode_raises_with_context(self, faulted):
        with pytest.raises(ReproError) as excinfo:
            pugz_decompress(faulted, n_chunks=3)
        assert excinfo.value.bit_offset is not None
        assert excinfo.value.stage is not None

    def test_recover_salvages_prefix_and_tail(self, corpus, faulted):
        plain, gz = corpus
        out, report = pugz_decompress(
            faulted,
            n_chunks=3,
            on_error="recover",
            verify=True,
            return_report=True,
            max_resync_search_bits=40000,
        )
        assert report.holes, "a mid-stream fault must be reported as a hole"
        hole = report.holes[0]
        assert isinstance(hole, PugzHole)
        assert not report.is_complete
        assert "salvaged" in report.chunk_outcomes

        # Every byte decoded before the fault comes back exactly: sum
        # the clean stream's block sizes up to the fault bit and demand
        # a byte-exact prefix at least that long.
        clean = inflate(gz, start_bit=80)
        expected_prefix = max(
            (b.out_end for b in clean.blocks if b.end_bit <= 8 * FAULT_POS),
            default=0,
        )
        assert expected_prefix > 0
        assert out[:expected_prefix] == plain[:expected_prefix]

        # The hole is bounded: resync found a later block, so the tail
        # was decoded too (more output than just the prefix).
        assert hole.end_bit < 8 * (len(gz) - 8)
        assert len(out) > expected_prefix
        # CRC cannot match an output with a hole in it.
        assert report.verify_failures

    def test_hole_byte_ranges(self, faulted):
        _, report = pugz_decompress(
            faulted, n_chunks=3, on_error="recover", return_report=True,
            max_resync_search_bits=40000,
        )
        for hole in report.holes:
            assert hole.start_bit < hole.end_bit
            assert hole.start_byte <= hole.end_byte
            assert hole.error
            assert hole.to_dict()["chunk_index"] == hole.chunk_index

    def test_unresolved_positions_render_as_placeholder(self, corpus, faulted):
        plain, _ = corpus
        out, report = pugz_decompress(
            faulted, n_chunks=3, on_error="recover", return_report=True,
            max_resync_search_bits=40000,
        )
        assert report.unresolved_markers > 0
        assert out.count(HOLE_BYTE) >= report.unresolved_markers - plain.count(HOLE_BYTE)

    def test_clean_file_recover_equals_raise(self, corpus):
        plain, gz = corpus
        out, report = pugz_decompress(
            gz, n_chunks=3, on_error="recover", verify=True, return_report=True
        )
        assert out == plain
        assert report.is_complete
        assert report.chunk_outcomes == ["ok"] * len(report.chunks)

    def test_invalid_on_error_value(self, corpus):
        _, gz = corpus
        with pytest.raises(ValueError, match="on_error"):
            pugz_decompress(gz, on_error="explode")
        with pytest.raises(ValueError, match="on_error"):
            pugz_decompress_payload(gz, 80, 8 * len(gz), on_error="explode")


class TestEmptyAndGarbagePayload:
    def test_empty_input(self):
        with pytest.raises(GzipFormatError, match="empty input"):
            pugz_decompress(b"")

    def test_header_only_member(self):
        gz = stdlib_gzip.compress(b"", 6)[:10]  # header, no payload/trailer
        with pytest.raises(GzipFormatError) as excinfo:
            pugz_decompress(gz)
        assert excinfo.value.bit_offset is not None

    def test_empty_payload_region_reports_offset(self):
        with pytest.raises(GzipFormatError, match="empty DEFLATE payload") as excinfo:
            pugz_decompress_payload(b"\x00" * 4, 16, 16)
        assert excinfo.value.bit_offset == 16
        assert excinfo.value.stage == "plan"

    def test_payload_start_past_end(self):
        with pytest.raises(GzipFormatError, match="empty DEFLATE payload"):
            pugz_decompress_payload(b"\x00" * 4, 99, 120)

    def test_pure_garbage_payload(self):
        garbage = bytes((i * 37 + 11) % 256 for i in range(64))
        with pytest.raises(ReproError):
            pugz_decompress_payload(garbage, 0, 8 * len(garbage))

    def test_empty_member_still_decodes(self):
        gz = stdlib_gzip.compress(b"", 6)
        assert pugz_decompress(gz, n_chunks=2) == b""


class TestTrailingGarbage:
    @pytest.fixture(scope="class")
    def with_garbage(self):
        plain = b"@r\nACGT\n+\nIIII\n" * 50
        gz = stdlib_gzip.compress(plain, 6)
        return plain, gz, gz + b"\x01\x02NOT-GZIP\xff"

    def test_raise_mode_reports_byte_offset(self, with_garbage):
        _, gz, dirty = with_garbage
        with pytest.raises(GzipFormatError, match="trailing garbage") as excinfo:
            pugz_decompress(dirty)
        assert str(len(gz)) in str(excinfo.value)
        assert excinfo.value.bit_offset == 8 * len(gz)

    def test_allow_flag_warns_and_stops(self, with_garbage):
        plain, gz, dirty = with_garbage
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out, report = pugz_decompress(
                dirty, allow_trailing_garbage=True, return_report=True
            )
        assert out == plain
        assert report.trailing_garbage_offset == len(gz)
        assert not report.is_complete
        assert any("trailing garbage" in str(w.message) for w in caught)

    def test_recover_mode_implies_allow(self, with_garbage):
        plain, gz, dirty = with_garbage
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            out, report = pugz_decompress(
                dirty, on_error="recover", return_report=True
            )
        assert out == plain
        assert report.trailing_garbage_offset == len(gz)

    def test_multi_member_then_garbage(self, with_garbage):
        plain, _, dirty = with_garbage
        two = dirty + dirty  # member + garbage makes the rest garbage too
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            out, report = pugz_decompress(
                two, allow_trailing_garbage=True, return_report=True
            )
        assert out == plain
        assert report.members == 1


class TestRecoverVerify:
    def test_trailer_tamper_recorded_not_raised(self):
        plain = b"@r\nACGTACGT\n+\nIIIIIIII\n" * 40
        gz = bytearray(stdlib_gzip.compress(plain, 6))
        gz[-5] ^= 0xFF  # CRC byte
        with pytest.raises(GzipFormatError, match="CRC"):
            pugz_decompress(bytes(gz), verify=True)
        out, report = pugz_decompress(
            bytes(gz), verify=True, on_error="recover", return_report=True
        )
        assert out == plain
        assert len(report.verify_failures) == 1
        assert "CRC" in report.verify_failures[0]
        assert not report.is_complete

    def test_marker_counts_still_reported(self, ):
        plain = np.random.default_rng(3).integers(65, 91, 4000, dtype=np.uint8).tobytes()
        gz = stdlib_gzip.compress(plain, 6)
        out, report = pugz_decompress(gz, n_chunks=2, return_report=True)
        assert out == plain
        assert len(report.chunk_marker_counts) == len(report.chunks)
