"""Random access to sequences in compressed FASTQ (Section VII-A)."""

import pytest

from repro.core.random_access import random_access_sequences
from repro.data import gzip_zlib, synthetic_fastq
from repro.deflate.deflate import gzip_compress
from repro.errors import RandomAccessError


@pytest.fixture(scope="module")
def safe_fastq():
    """FASTQ whose quality alphabet is disjoint from DNA letters."""
    return synthetic_fastq(5000, read_length=150, seed=101, quality_profile="safe")


@pytest.fixture(scope="module")
def cross_fastq():
    """FASTQ with Illumina qualities + DNA barcode (cross-matching).

    100 bp reads raise the header/quality share of the stream, which
    strengthens the cross-matching channels; with this fixed seed the
    file deterministically fails to fully resolve at MB scale — the
    paper's "normal stratum, ambiguous half" persona.
    """
    return synthetic_fastq(
        7000, read_length=100, seed=102, quality_profile="illumina", barcode="ATCACG"
    )


class TestNormalLevel:
    def test_safe_file_resolves(self, safe_fastq):
        gz = gzip_zlib(safe_fastq, 6)
        report = random_access_sequences(gz, len(gz) // 4)
        assert report.first_resolved_block is not None
        assert report.delay_bytes is not None
        assert len(report.sequences) > 100
        # Safe content: essentially every sequence resolves.
        assert report.unambiguous_fraction > 0.99

    def test_crossmatch_file_partially_ambiguous(self, cross_fastq):
        """With DNA letters in qualities/headers, a fraction of
        sequences stays ambiguous — the paper's normal/highest story."""
        gz = gzip_zlib(cross_fastq, 6)
        report = random_access_sequences(gz, len(gz) // 4)
        frac = report.unambiguous_fraction
        if frac is None:
            # No sequence-resolved block within the file (the paper's
            # normal-stratum delay is 387 MB on average, far beyond an
            # MB-scale file): ambiguity must be visible in the blocks.
            ambiguous = sum(a for _, a in report.block_sequences)
            assert ambiguous > 0
            assert report.residual_markers > 0
        else:
            assert frac < 0.999

    def test_delay_positive_and_bounded(self, safe_fastq):
        gz = gzip_zlib(safe_fastq, 6)
        report = random_access_sequences(gz, len(gz) // 3)
        assert 0 < report.delay_bytes <= report.decompressed


class TestLowestLevelWeakPersona:
    def test_weak_compressor_resolves_fast_and_fully(self, safe_fastq):
        """The Table I 'lowest' stratum: literal-rich stream, ~100 %
        unambiguous, small delay."""
        gz = gzip_compress(safe_fastq[:1_200_000], 1, min_match=8)
        report = random_access_sequences(gz, len(gz) // 4)
        assert report.first_resolved_block is not None
        assert report.unambiguous_fraction == 1.0


class TestStreamingMode:
    def test_streaming_equals_materialised(self, safe_fastq):
        """The O(32 KiB)-memory path must report identical results."""
        gz = gzip_zlib(safe_fastq, 6)
        a = random_access_sequences(gz, len(gz) // 4)
        b = random_access_sequences(gz, len(gz) // 4, streaming=True)
        assert a.sync_bit == b.sync_bit
        assert a.decompressed == b.decompressed
        assert a.residual_markers == b.residual_markers
        assert a.first_resolved_block == b.first_resolved_block
        assert a.delay_bytes == b.delay_bytes
        assert a.block_sequences == b.block_sequences
        assert [(s.start, s.end, s.undetermined) for s in a.sequences] == [
            (s.start, s.end, s.undetermined) for s in b.sequences
        ]


class TestMechanics:
    def test_offset_beyond_payload_raises(self, safe_fastq):
        gz = gzip_zlib(safe_fastq, 6)
        with pytest.raises(RandomAccessError):
            random_access_sequences(gz, len(gz) + 100)

    def test_offset_inside_header_clamped(self, safe_fastq):
        gz = gzip_zlib(safe_fastq, 6)
        report = random_access_sequences(gz, 0, max_output=300_000)
        assert report.sync_bit >= 80  # past the 10-byte gzip header

    def test_max_output_cap(self, safe_fastq):
        gz = gzip_zlib(safe_fastq, 6)
        report = random_access_sequences(gz, len(gz) // 2, max_output=100_000)
        assert report.decompressed <= 110_000

    def test_block_sequences_accounting(self, safe_fastq):
        gz = gzip_zlib(safe_fastq, 6)
        report = random_access_sequences(gz, len(gz) // 4)
        totals = sum(t for t, _ in report.block_sequences)
        assert totals > 0
        # Ambiguous never exceeds total per block.
        for total, ambiguous in report.block_sequences:
            assert 0 <= ambiguous <= total

    def test_sequences_only_after_resolved_block(self, safe_fastq):
        gz = gzip_zlib(safe_fastq, 6)
        report = random_access_sequences(gz, len(gz) // 4)
        for s in report.sequences:
            assert s.start >= report.delay_bytes
