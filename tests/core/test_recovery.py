"""Forensic recovery API (Section VI-B application)."""

import gzip as stdlib_gzip

import numpy as np
import pytest

from repro.core.recovery import fastq_block_validator, locate_corruption, recover
from repro.data import gzip_zlib, parse_fastq, synthetic_fastq
from repro.deflate.inflate import inflate


def _damage_block_header(gz: bytes, block_index: int) -> tuple[bytes, int]:
    """Destroy the dynamic-header region of one block: structurally
    detectable damage (unlike symbol-data damage, which can decode to
    valid-looking text — see recovery.py's silent-corruption caveat)."""
    full = inflate(gz, start_bit=80)
    block = full.blocks[block_index]
    start_byte = block.start_bit // 8
    out = bytearray(gz)
    rng = np.random.default_rng(0)
    out[start_byte + 1 : start_byte + 33] = rng.integers(0, 256, 32).astype(np.uint8).tobytes()
    return bytes(out), start_byte


@pytest.fixture(scope="module")
def damaged():
    text = synthetic_fastq(5000, read_length=150, seed=101, quality_profile="safe")
    gz = gzip_zlib(text, 6)
    broken, hole_byte = _damage_block_header(gz, 4)
    return text, broken, hole_byte


class TestLocateCorruption:
    def test_clean_file_reaches_end(self, fastq_small):
        gz = gzip_zlib(fastq_small, 6)
        bit = locate_corruption(gz)
        assert bit > 8 * (len(gz) - 32)

    def test_damage_located_at_broken_block(self, damaged):
        text, gz, hole_byte = damaged
        bit = locate_corruption(gz)
        assert abs(bit // 8 - hole_byte) < 64


class TestRecover:
    def test_head_is_clean_prefix(self, damaged):
        text, gz, _ = damaged
        report = recover(gz)
        assert len(report.head) > 0
        assert text.startswith(report.head)

    def test_resync_found_after_damage(self, damaged):
        text, gz, hole_byte = damaged
        report = recover(gz)
        assert report.resync_bit is not None
        assert report.resync_bit > 8 * hole_byte

    def test_tail_symbols_present(self, damaged):
        _, gz, _ = damaged
        report = recover(gz)
        assert report.tail_symbols is not None
        assert report.tail_undetermined > 0
        rendered = report.tail_bytes_best_effort
        assert rendered is not None and b"?" in rendered

    def test_salvaged_sequences_are_real_reads(self, damaged):
        text, gz, _ = damaged
        report = recover(gz, min_read_length=140)
        truth = {r.sequence for r in parse_fastq(text)}
        assert len(report.sequences) > 100
        from repro.core.marker import to_bytes

        hits = 0
        for s in report.sequences[:100]:
            seq = to_bytes(report.tail_symbols[s.start : s.end])
            if seq in truth:
                hits += 1
        assert hits > 90

    def test_guess_mode_fills_everything(self, damaged):
        _, gz, _ = damaged
        report = recover(gz, guess=True)
        from repro.core.marker import MARKER_BASE

        assert (report.tail_symbols < MARKER_BASE).all()

    def test_unrecoverable_tail(self):
        """Damage destroying everything after the head: no resync."""
        text = synthetic_fastq(500, read_length=100, seed=9)
        gz = bytearray(gzip_zlib(text, 6))
        rng = np.random.default_rng(1)
        half = len(gz) // 2
        gz[half:] = rng.integers(0, 256, len(gz) - half).astype(np.uint8).tobytes()
        report = recover(bytes(gz), max_resync_search_bits=40_000)
        assert report.resync_bit is None
        assert text.startswith(report.head)


class TestSilentCorruptionAndValidator:
    def test_symbol_damage_can_be_silent(self):
        """Mid-block damage in text-alphabet content decodes to valid
        ASCII garbage: structurally undetectable (the caveat)."""
        text = synthetic_fastq(3000, read_length=150, seed=101, quality_profile="safe")
        gz = bytearray(gzip_zlib(text, 6))
        hole = len(gz) // 2
        rng = np.random.default_rng(0)
        gz[hole : hole + 128] = rng.integers(0, 256, 128).astype(np.uint8).tobytes()
        out = inflate(bytes(gz), start_bit=80)
        assert out.final_seen
        assert out.data != text  # corrupted...
        bit = locate_corruption(bytes(gz))
        assert bit > 8 * (len(gz) - 32)  # ...but structurally invisible

    def test_fastq_validator_catches_silent_damage(self):
        """The content-aware validator detects what structure cannot."""
        text = synthetic_fastq(3000, read_length=150, seed=101, quality_profile="safe")
        gz = bytearray(gzip_zlib(text, 6))
        hole = len(gz) // 2
        rng = np.random.default_rng(0)
        gz[hole : hole + 128] = rng.integers(0, 256, 128).astype(np.uint8).tobytes()
        bit = locate_corruption(bytes(gz), validator=fastq_block_validator)
        assert bit < 8 * (hole + 2048)

    def test_validator_passes_clean_file(self, fastq_medium):
        gz = gzip_zlib(fastq_medium, 6)
        bit = locate_corruption(gz, validator=fastq_block_validator)
        assert bit > 8 * (len(gz) - 32)
