"""Streaming sequence extractor: equivalence with the batch extractor."""

import numpy as np
import pytest

from repro.core.marker import from_bytes
from repro.core.marker_inflate import marker_inflate
from repro.core.seqstream import StreamingSequenceExtractor
from repro.core.sequences import extract_sequences
from repro.core.sync import find_block_start
from repro.data import gzip_zlib, synthetic_fastq


def feed_in_chunks(symbols: np.ndarray, sizes, min_length=20):
    ex = StreamingSequenceExtractor(min_length=min_length)
    pos = 0
    i = 0
    while pos < len(symbols):
        size = sizes[i % len(sizes)]
        ex(symbols[pos : pos + size].tolist(), pos)
        pos += size
        i += 1
    ex.finish()
    return ex


class TestEquivalence:
    def test_matches_batch_on_fastq(self, fastq_small):
        symbols = from_bytes(fastq_small)
        batch = extract_sequences(symbols, min_length=20)
        stream = feed_in_chunks(symbols, [1000, 3777, 50])
        assert [(s.start, s.end) for s in stream.sequences] == [
            (s.start, s.end) for s in batch
        ]

    @pytest.mark.parametrize("chunk", [1, 7, 64, 4096])
    def test_chunk_size_invariance(self, chunk):
        text = b"\n".join(
            [b"@h1", b"ACGT" * 30, b"+", b"I" * 120, b"@h2", b"TTGGCCAA" * 20, b"+", b"J" * 160]
        ) + b"\n"
        symbols = from_bytes(text)
        batch = extract_sequences(symbols, min_length=20)
        stream = feed_in_chunks(symbols, [chunk])
        assert [(s.start, s.end) for s in stream.sequences] == [
            (s.start, s.end) for s in batch
        ]

    def test_sequence_split_across_chunks(self):
        """A read cut mid-way by a flush boundary is still one match."""
        text = b"\n" + b"ACGT" * 50 + b"\nIIII\n"
        symbols = from_bytes(text)
        stream = feed_in_chunks(symbols, [37])
        (seq,) = [s for s in stream.sequences if s.length == 200]
        assert seq.start == 1

    def test_marker_stream_equivalence(self, fastq_medium):
        """On a real marker-domain stream (with undetermined chars),
        streaming == batch."""
        gz = gzip_zlib(fastq_medium, 6)
        sync = find_block_start(gz, start_bit=8 * (len(gz) // 3))
        full = marker_inflate(gz, start_bit=sync.bit_offset)
        batch = extract_sequences(full.symbols, min_length=20)

        ex = StreamingSequenceExtractor(min_length=20)
        marker_inflate(gz, start_bit=sync.bit_offset, sink=ex, flush_symbols=30_000)
        ex.finish()
        assert [(s.start, s.end, s.undetermined) for s in ex.sequences] == [
            (s.start, s.end, s.undetermined) for s in batch
        ]


class TestLifecycle:
    def test_finish_idempotent(self):
        ex = StreamingSequenceExtractor()
        ex(from_bytes(b"\nACGTACGTACGTACGTACGTACGT\n").tolist(), 0)
        ex.finish()
        n = len(ex.sequences)
        ex.finish()
        assert len(ex.sequences) == n

    def test_feed_after_finish_raises(self):
        ex = StreamingSequenceExtractor()
        ex.finish()
        with pytest.raises(RuntimeError):
            ex([65], 0)

    def test_non_contiguous_rejected(self):
        ex = StreamingSequenceExtractor()
        ex(from_bytes(b"\nACGTACGT").tolist(), 0)
        with pytest.raises(ValueError):
            ex(from_bytes(b"ACGT\n").tolist(), 100)

    def test_end_of_stream_terminates_final_read(self):
        """A read at EOF without trailing newline still extracts."""
        ex = StreamingSequenceExtractor()
        ex(from_bytes(b"\n" + b"ACGT" * 10).tolist(), 0)
        ex.finish()
        assert len(ex.sequences) == 1
        assert ex.sequences[0].length == 40
