"""Heuristic DNA sequence extraction (Appendix X-B grammar)."""

import numpy as np
import pytest

from repro.core.marker import MARKER_BASE, from_bytes
from repro.core.sequences import classify_symbols, extract_sequences


def syms(text: str, marker_positions=()) -> np.ndarray:
    """Build a symbol array from text; '?' become markers."""
    arr = from_bytes(text.encode())
    for i, ch in enumerate(text):
        if ch == "?":
            arr[i] = MARKER_BASE + i
    return arr


class TestGrammar:
    def test_simple_sequence_between_newlines(self):
        arr = syms("\nACGTACGTACGTACGTACGTACGT\n")
        seqs = extract_sequences(arr, min_length=10)
        assert len(seqs) == 1
        assert seqs[0].start == 1
        assert seqs[0].end == 25
        assert seqs[0].is_unambiguous

    def test_terminators_trimmed(self):
        arr = syms("\nAAAAACCCCCGGGGGTTTTT\n")
        (s,) = extract_sequences(arr, min_length=5)
        assert s.length == 20  # newlines not included

    def test_sequence_with_undetermined_inside(self):
        arr = syms("\nACGTACGTAC??GTACGTACGT\n")
        (s,) = extract_sequences(arr, min_length=10)
        assert s.undetermined == 2
        assert not s.is_unambiguous

    def test_marker_as_terminator(self):
        # U can terminate a sequence (grammar: T is newline or undetermined).
        arr = syms("?ACGTACGTACGTACGTACGT?")
        (s,) = extract_sequences(arr, min_length=10)
        assert s.start == 1 and s.end == 21

    def test_no_terminator_no_match(self):
        # DNA glued to other text without T boundaries is rejected.
        arr = syms("xACGTACGTACGTACGTACGTACGTx")
        assert extract_sequences(arr, min_length=5) == []

    def test_min_length_filter(self):
        arr = syms("\nACGT\n" + "ACGTACGTACGTACGTACGT\n")
        seqs = extract_sequences(arr, min_length=10)
        assert len(seqs) == 1
        assert seqs[0].length == 20

    def test_max_length_filter(self):
        arr = syms("\n" + "ACGT" * 100 + "\n")
        assert extract_sequences(arr, min_length=10, max_length=50) == []

    def test_n_is_a_nucleotide(self):
        arr = syms("\nACGTNNNNACGTACGTACGTN\n")
        (s,) = extract_sequences(arr, min_length=10)
        assert s.length == 21

    def test_lowercase_not_matched(self):
        arr = syms("\nacgtacgtacgtacgtacgt\n")
        assert extract_sequences(arr, min_length=5) == []

    def test_multiple_sequences(self):
        arr = syms("\nACGTACGTACGTACGTACGTA\nheader line\nTTTTGGGGCCCCAAAATTTTG\n")
        seqs = extract_sequences(arr, min_length=10)
        assert len(seqs) == 2

    def test_quality_lookalike_needs_boundaries(self):
        """Quality fragments that look like DNA but sit mid-line are
        filtered by the terminator requirement."""
        arr = syms("\nIIIACGTACGTACGTACGTIII\n")
        assert extract_sequences(arr, min_length=5) == []

    def test_alternating_undetermined_runs(self):
        # D+ (U+ D+)* with several alternations.
        arr = syms("\nACG??TACG??TAC??GTACGT\n")
        (s,) = extract_sequences(arr, min_length=10)
        assert s.undetermined == 6

    def test_empty_input(self):
        assert extract_sequences(np.zeros(0, dtype=np.int32)) == []


class TestClassify:
    def test_class_string(self):
        arr = syms("A?x\n")
        classes = classify_symbols(arr)
        assert classes == b"DU.T"

    def test_real_fastq_extraction(self, fastq_small):
        """On a clean FASTQ every read is recovered exactly."""
        from repro.data import parse_fastq

        arr = from_bytes(fastq_small)
        seqs = extract_sequences(arr, min_length=20)
        records = parse_fastq(fastq_small)
        assert len(seqs) == len(records)
        for s, r in zip(seqs, records):
            assert fastq_small[s.start : s.end] == r.sequence
