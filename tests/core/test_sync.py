"""Block-start detection: exhaustive probing with Appendix X-A checks."""

import pytest

from repro.core.sync import find_block_start, prescreen, probe_block
from repro.deflate.inflate import inflate
from repro.errors import SyncError
from tests.conftest import zlib_raw


@pytest.fixture(scope="module")
def stream(fastq_medium):
    raw = zlib_raw(fastq_medium, 6)
    full = inflate(raw)
    assert len(full.blocks) >= 4
    return raw, full


class TestProbeBlock:
    def test_true_starts_accepted(self, stream):
        raw, full = stream
        for b in full.blocks[1:-1][:3]:
            assert probe_block(raw, b.start_bit)

    def test_shifted_offsets_rejected(self, stream):
        raw, full = stream
        b = full.blocks[1]
        for delta in (1, 2, 3, 5, 17):
            assert not probe_block(raw, b.start_bit + delta)

    def test_final_block_rejected(self, stream):
        raw, full = stream
        assert not probe_block(raw, full.blocks[-1].start_bit)


class TestFindBlockStart:
    def test_finds_exact_next_start(self, stream):
        """Searching from just after block k's start must land exactly
        on block k+1's start."""
        raw, full = stream
        b1, b2 = full.blocks[1], full.blocks[2]
        sync = find_block_start(raw, start_bit=b1.start_bit + 1)
        assert sync.bit_offset == b2.start_bit

    def test_search_from_zero_finds_first(self, stream):
        raw, full = stream
        sync = find_block_start(raw, start_bit=0)
        assert sync.bit_offset == full.blocks[0].start_bit == 0

    def test_candidates_counted(self, stream):
        raw, full = stream
        b1, b2 = full.blocks[1], full.blocks[2]
        sync = find_block_start(raw, start_bit=b1.start_bit + 1)
        assert sync.candidates_tried == b2.start_bit - b1.start_bit

    def test_max_search_bits_gives_up(self, stream):
        raw, full = stream
        b1 = full.blocks[1]
        with pytest.raises(SyncError):
            find_block_start(raw, start_bit=b1.start_bit + 1, max_search_bits=10)

    def test_no_block_in_random_noise(self):
        import os

        noise = os.urandom(4000)
        with pytest.raises(SyncError):
            find_block_start(noise, start_bit=0, max_search_bits=6000)

    def test_near_end_confirmation_via_final_probe(self, stream):
        """A start whose confirmation run hits the stream's BFINAL block
        must still be confirmed (hit_final_probe path)."""
        raw, full = stream
        penult = full.blocks[-2]
        sync = find_block_start(raw, start_bit=penult.start_bit)
        assert sync.bit_offset == penult.start_bit
        assert sync.blocks_confirmed >= 1

    def test_end_bit_respected(self, stream):
        raw, full = stream
        b2 = full.blocks[2]
        with pytest.raises(SyncError):
            find_block_start(raw, start_bit=b2.start_bit - 8, end_bit=b2.start_bit)

    def test_all_interior_block_starts_found(self, stream):
        """Every non-final block boundary is recoverable by searching
        from one bit past the previous boundary."""
        raw, full = stream
        for prev, cur in zip(full.blocks[:-1], full.blocks[1:-1]):
            sync = find_block_start(raw, start_bit=prev.start_bit + 1)
            assert sync.bit_offset == cur.start_bit

    def test_elapsed_recorded(self, stream):
        raw, full = stream
        sync = find_block_start(raw, start_bit=full.blocks[1].start_bit)
        assert sync.elapsed >= 0.0


class TestPrescreen:
    def test_never_rejects_true_block_starts(self, stream):
        """The fast screen must be sound: every genuine block start
        passes (completeness is the full probe's job)."""
        raw, full = stream
        for b in full.blocks[:-1]:
            assert prescreen(raw, b.start_bit), f"true start {b.start_bit} screened out"

    def test_rejects_final_block(self, stream):
        raw, full = stream
        assert not prescreen(raw, full.blocks[-1].start_bit)

    def test_rejection_rate_on_shifted_offsets(self, stream):
        """The screen's value: the large majority of wrong offsets die
        in the cheap path."""
        raw, full = stream
        base = full.blocks[2].start_bit
        rejected = sum(
            0 if prescreen(raw, base + d) else 1 for d in range(1, 2001)
        )
        assert rejected > 1700  # > 85 %

    def test_near_end_of_buffer(self, stream):
        raw, _ = stream
        for bit in range(8 * len(raw) - 20, 8 * len(raw)):
            prescreen(raw, bit)  # must not raise

    def test_stored_block_screen(self):
        from repro.deflate.bitio import BitWriter

        w = BitWriter()
        w.write(0, 1)
        w.write(0, 2)  # stored
        w.align_to_byte()
        w.write(5000, 16)
        w.write(5000 ^ 0xFFFF, 16)
        w.write_bytes(b"A" * 5000)
        data = w.getvalue()
        assert prescreen(data, 0)
        bad = bytearray(data)
        bad[3] ^= 0xFF  # break NLEN
        assert not prescreen(bytes(bad), 0)


class TestRobustnessAcrossLevels:
    @pytest.mark.parametrize("level", [1, 9])
    def test_sync_works_on_other_levels(self, level, fastq_medium):
        raw = zlib_raw(fastq_medium, level)
        full = inflate(raw)
        if len(full.blocks) < 3:
            pytest.skip("stream has too few blocks at this level")
        b = full.blocks[1]
        sync = find_block_start(raw, start_bit=b.start_bit - 40)
        assert sync.bit_offset == b.start_bit
