"""Second-pass context resolution and chunk translation."""

import numpy as np
import pytest

from repro.core import marker
from repro.core.translate import final_window, resolve_contexts, translate_chunk
from repro.errors import ReproError


def concrete_window(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=32768).astype(np.int32)


class TestFinalWindow:
    def test_long_chunk(self):
        syms = np.arange(40000, dtype=np.int32) % 256
        w = final_window(syms)
        assert w.shape == (32768,)
        assert (w == syms[-32768:]).all()

    def test_short_chunk_uses_initial_window(self):
        initial = concrete_window(1)
        syms = np.array([7, 8, 9], dtype=np.int32)
        w = final_window(syms, initial)
        assert (w[-3:] == syms).all()
        assert (w[:-3] == initial[3:]).all()

    def test_short_chunk_without_initial_raises(self):
        with pytest.raises(ReproError):
            final_window(np.array([1], dtype=np.int32))


class TestResolveContexts:
    def test_empty(self):
        assert resolve_contexts([]) == []

    def test_chain_resolution(self):
        """w2's markers point into w1; after resolution w2 is concrete."""
        w1 = concrete_window(2)
        w2 = w1.copy()
        w2[100:200] = marker.MARKER_BASE + np.arange(500, 600)
        resolved = resolve_contexts([w1, w2])
        assert (resolved[0] == w1).all()
        assert marker.count_markers(resolved[1]) == 0
        assert (resolved[1][100:200] == w1[500:600]).all()

    def test_three_link_chain(self):
        w1 = concrete_window(3)
        w2 = np.full(32768, marker.MARKER_BASE + 0, dtype=np.int32)  # all -> w1[0]
        w3 = np.array([marker.MARKER_BASE + k for k in range(32768)], dtype=np.int32)
        resolved = resolve_contexts([w1, w2, w3])
        assert (resolved[1] == w1[0]).all()
        assert (resolved[2] == resolved[1]).all()  # w3 copies all of w2


class TestTranslateChunk:
    def test_translate_resolves_and_converts(self):
        ctx = concrete_window(4)
        syms = np.array([65, marker.MARKER_BASE + 42, 67], dtype=np.int32)
        out = translate_chunk(syms, ctx)
        assert out == bytes([65, ctx[42], 67])

    def test_translate_raises_on_marker_in_context(self):
        ctx = concrete_window(5)
        ctx[7] = marker.MARKER_BASE + 3  # unresolved context entry
        syms = np.array([marker.MARKER_BASE + 7], dtype=np.int32)
        with pytest.raises(ReproError):
            translate_chunk(syms, ctx)
