"""Copy-match window underflow at chunk starts (PR 5 sweep).

A chunk handed less than 32 KiB of context can see a back-reference
that reaches *before* the provided window.  The contract, exercised
here with distances straddling the provided-window boundary by +-1:

* **marker inflate** pads the missing (older) context with markers, so
  the reference decodes to the marker naming the unknown position —
  output is produced, never a wrap and never an exception;
* **byte-domain inflate** (which has no marker alphabet) raises a
  structured :class:`~repro.errors.BackrefError` carrying
  ``bit_offset``/``stage``, which the pugz pass-1 wrapper annotates
  with ``chunk_index`` — never a silent wrap or negative index;
* **strict (probing) inflate** assumes an unknown 32 KiB context and
  renders the unknown bytes as ``'?'`` placeholders.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import marker
from repro.core.marker_inflate import marker_inflate
from repro.deflate.deflate import compress_tokens
from repro.deflate.inflate import inflate
from repro.deflate.tokens import TokenStream
from repro.errors import BackrefError, annotate

DIST = 100
LENGTH = 8


def leading_match_payload(
    distance: int = DIST, length: int = LENGTH, bfinal: bool = True
) -> bytes:
    """Raw DEFLATE stream whose first token is a match at ``distance``.

    The match expands to ``length`` copies of ``'A'`` (what a correct
    window of ``'A'`` bytes would supply), followed by a literal tail.
    """
    tokens = TokenStream()
    tokens.add_match(distance, length)
    tail = b"CGTACGTA"
    for b in tail:
        tokens.add_literal(b)
    return compress_tokens(b"A" * length + tail, tokens, bfinal=bfinal)


PAYLOAD = leading_match_payload()


class TestByteDomainInflate:
    def test_window_exactly_covers_distance(self):
        result = inflate(PAYLOAD, window=b"A" * DIST)
        assert result.data == b"A" * LENGTH + b"CGTACGTA"

    def test_window_one_byte_larger(self):
        result = inflate(PAYLOAD, window=b"x" + b"A" * DIST)
        assert result.data[:LENGTH] == b"A" * LENGTH

    def test_window_one_byte_short_raises_structured(self):
        with pytest.raises(BackrefError) as exc_info:
            inflate(PAYLOAD, window=b"A" * (DIST - 1))
        err = exc_info.value
        assert err.bit_offset is not None
        assert err.stage == "inflate"
        # The pugz pass-1 worker annotates the failing chunk's index on
        # exactly this error before propagating it.
        annotate(err, chunk_index=3)
        assert err.chunk_index == 3

    def test_empty_window_raises(self):
        with pytest.raises(BackrefError):
            inflate(PAYLOAD)

    def test_no_silent_wrap(self):
        # A wrap bug would satisfy the reference from the *end* of the
        # output/window and decode garbage instead of raising.
        for short in (1, LENGTH, DIST - 1):
            with pytest.raises(BackrefError):
                inflate(PAYLOAD, window=b"Z" * (DIST - short))


class TestStrictInflate:
    def test_unknown_context_renders_placeholders(self):
        # Strict probing rejects BFINAL=1 and blocks under 1 KiB, so
        # probe a non-final block with a long literal tail.
        tokens = TokenStream()
        tokens.add_match(DIST, LENGTH)
        tail = b"ACGT" * 300
        for b in tail:
            tokens.add_literal(b)
        payload = compress_tokens(b"A" * LENGTH + tail, tokens, bfinal=False)
        result = inflate(payload, strict=True, max_blocks=1)
        assert result.data[:LENGTH] == b"?" * LENGTH
        assert result.data[LENGTH:] == tail


class TestMarkerInflate:
    @pytest.mark.parametrize("delta", [-1, 0, +1])
    def test_boundary_straddle(self, delta):
        """Provide DIST + delta bytes of context; the match needs DIST."""
        provided = DIST + delta
        result = marker_inflate(PAYLOAD, window=b"A" * provided)
        symbols = result.symbols
        if delta >= 0:
            # Fully covered: concrete bytes, no markers.
            assert marker.count_markers(symbols[:LENGTH]) == 0
            assert bytes(symbols[:LENGTH].astype(np.uint8)) == b"A" * LENGTH
        else:
            # The oldest referenced position is one before the provided
            # context: exactly one marker, naming window slot
            # 32768 - DIST (the missing byte), the rest concrete.
            assert marker.count_markers(symbols[:LENGTH]) == 1
            assert symbols[0] == marker.MARKER_BASE + 32768 - DIST
            assert bytes(symbols[1:LENGTH].astype(np.uint8)) == b"A" * (LENGTH - 1)

    def test_marker_resolves_to_true_context(self):
        short = marker_inflate(PAYLOAD, window=b"A" * (DIST - 1))
        context = np.frombuffer(b"B" * (32768 - DIST + 1) + b"A" * (DIST - 1), dtype=np.uint8).astype(np.int32)
        resolved = marker.resolve(short.symbols, context)
        assert bytes(resolved[:LENGTH].astype(np.uint8)) == b"B" + b"A" * (LENGTH - 1)

    def test_no_negative_index(self):
        # Distances are capped at 32768 by the format, and the seeded
        # window always pads to exactly 32768 symbols, so a negative
        # list index is impossible; the assertion is that decoding with
        # *zero* context still succeeds and yields markers.
        result = marker_inflate(PAYLOAD, window=b"")
        assert marker.count_markers(result.symbols[:LENGTH]) == LENGTH
