"""Memory-bounded (striped) parallel decompression."""

import gzip as stdlib_gzip

import pytest

from repro.core.windowed import pugz_decompress_windowed
from repro.data import gzip_zlib


class TestExactness:
    @pytest.mark.parametrize("n_chunks,stripe", [(4, 1), (4, 2), (8, 3), (6, 6), (5, 10)])
    def test_stripe_geometries(self, n_chunks, stripe, fastq_medium, fastq_medium_gz6):
        parts = []
        report = pugz_decompress_windowed(
            fastq_medium_gz6, parts.append, n_chunks=n_chunks, stripe_chunks=stripe
        )
        assert b"".join(parts) == fastq_medium
        assert report.output_size == len(fastq_medium)

    def test_single_chunk(self, fastq_medium, fastq_medium_gz6):
        parts = []
        pugz_decompress_windowed(fastq_medium_gz6, parts.append, n_chunks=1)
        assert b"".join(parts) == fastq_medium

    @pytest.mark.parametrize("level", [1, 9])
    def test_other_levels(self, level, fastq_medium):
        gz = gzip_zlib(fastq_medium, level)
        parts = []
        pugz_decompress_windowed(gz, parts.append, n_chunks=4, stripe_chunks=2)
        assert b"".join(parts) == fastq_medium


class TestMemoryBound:
    def test_peak_below_total(self, fastq_medium, fastq_medium_gz6):
        parts = []
        report = pugz_decompress_windowed(
            fastq_medium_gz6, parts.append, n_chunks=8, stripe_chunks=2
        )
        if report.chunks >= 6:
            assert report.peak_stripe_symbols < 0.6 * len(fastq_medium)

    def test_smaller_stripes_smaller_peak(self, fastq_medium, fastq_medium_gz6):
        peaks = {}
        for stripe in (1, 4):
            parts = []
            report = pugz_decompress_windowed(
                fastq_medium_gz6, parts.append, n_chunks=8, stripe_chunks=stripe
            )
            peaks[stripe] = report.peak_stripe_symbols
        assert peaks[1] <= peaks[4]

    def test_stripe_count_reported(self, fastq_medium_gz6):
        parts = []
        report = pugz_decompress_windowed(
            fastq_medium_gz6, parts.append, n_chunks=6, stripe_chunks=2
        )
        assert report.stripes == -(-report.chunks // 2)


class TestValidation:
    def test_invalid_stripe_chunks(self, fastq_medium_gz6):
        with pytest.raises(ValueError):
            pugz_decompress_windowed(fastq_medium_gz6, lambda b: None, stripe_chunks=0)

    def test_ordered_emission(self, fastq_medium, fastq_medium_gz6):
        """Chunks arrive at the sink strictly in stream order."""
        seen = []

        def sink(b):
            seen.append(len(b))

        pugz_decompress_windowed(fastq_medium_gz6, sink, n_chunks=6, stripe_chunks=2)
        total = 0
        reassembled = []
        parts2 = []
        pugz_decompress_windowed(
            fastq_medium_gz6, parts2.append, n_chunks=6, stripe_chunks=2
        )
        assert b"".join(parts2) == fastq_medium
