"""Unit and property tests for the LSB-first bit reader/writer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate.bitio import BitReader, BitWriter, reverse_bits
from repro.errors import BitstreamError


class TestReverseBits:
    def test_zero(self):
        assert reverse_bits(0, 8) == 0

    def test_single_bit(self):
        assert reverse_bits(1, 4) == 0b1000

    def test_palindrome(self):
        assert reverse_bits(0b1001, 4) == 0b1001

    def test_known_value(self):
        assert reverse_bits(0b110, 3) == 0b011

    def test_involution(self):
        for v in range(256):
            assert reverse_bits(reverse_bits(v, 8), 8) == v


class TestBitReaderBasics:
    def test_reads_lsb_first(self):
        # 0b10110010 read 3+5 bits LSB-first.
        r = BitReader(bytes([0b10110010]))
        assert r.read(3) == 0b010
        assert r.read(5) == 0b10110

    def test_multi_byte(self):
        r = BitReader(bytes([0xFF, 0x00, 0xAA]))
        assert r.read(8) == 0xFF
        assert r.read(8) == 0x00
        assert r.read(8) == 0xAA

    def test_read_spanning_bytes(self):
        r = BitReader(bytes([0b11110000, 0b00001111]))
        assert r.read(12) == 0b111111110000

    def test_read_zero_bits(self):
        r = BitReader(b"\xff")
        assert r.read(0) == 0
        assert r.tell_bits() == 0

    def test_tell_bits_tracks_position(self):
        r = BitReader(b"\xab\xcd\xef")
        assert r.tell_bits() == 0
        r.read(5)
        assert r.tell_bits() == 5
        r.read(11)
        assert r.tell_bits() == 16

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        assert r.bits_remaining() == 16
        r.read(7)
        assert r.bits_remaining() == 9

    def test_start_bit_offset(self):
        data = bytes([0b10101010, 0b11001100])
        r = BitReader(data, start_bit=3)
        whole = BitReader(data)
        whole.read(3)
        assert r.read(10) == whole.read(10)

    def test_start_bit_out_of_range(self):
        with pytest.raises(BitstreamError):
            BitReader(b"\x00", start_bit=9)

    def test_read_past_end_raises(self):
        r = BitReader(b"\xff")
        r.read(8)
        with pytest.raises(BitstreamError):
            r.read(1)

    def test_memoryview_input(self):
        r = BitReader(memoryview(b"\x0f"))
        assert r.read(4) == 0x0F


class TestPeekConsume:
    def test_peek_does_not_advance(self):
        r = BitReader(b"\xa5")
        assert r.peek(4) == r.peek(4)
        assert r.tell_bits() == 0

    def test_peek_then_consume(self):
        r = BitReader(bytes([0b1101_0110]))
        assert r.peek(8) == 0b11010110
        r.consume(3)
        assert r.peek(5) == 0b11010

    def test_peek_past_end_zero_pads(self):
        r = BitReader(b"\x01")
        assert r.peek(15) == 1  # upper bits read as zero

    def test_consume_past_end_raises(self):
        r = BitReader(b"\x01")
        r.peek(15)
        with pytest.raises(BitstreamError):
            r.consume(15)


class TestAlignmentAndBytes:
    def test_align_to_byte(self):
        r = BitReader(b"\xff\x42")
        r.read(3)
        r.align_to_byte()
        assert r.tell_bits() == 8
        assert r.read_bytes(1) == b"\x42"

    def test_align_when_already_aligned(self):
        r = BitReader(b"\x11\x22")
        r.read(8)
        r.align_to_byte()
        assert r.tell_bits() == 8

    def test_read_bytes_requires_alignment(self):
        r = BitReader(b"\xff\xff")
        r.read(1)
        with pytest.raises(BitstreamError):
            r.read_bytes(1)

    def test_read_bytes_past_end(self):
        r = BitReader(b"\x00")
        with pytest.raises(BitstreamError):
            r.read_bytes(2)

    def test_reads_continue_after_read_bytes(self):
        r = BitReader(bytes([0x01, 0x02, 0b101]))
        assert r.read_bytes(2) == b"\x01\x02"
        assert r.read(3) == 0b101

    def test_seek_bits(self):
        data = bytes(range(16))
        r = BitReader(data)
        r.read(37)
        r.seek_bits(8)
        assert r.read(8) == 1


class TestBitWriter:
    def test_simple_bytes(self):
        w = BitWriter()
        w.write(0xAB, 8)
        w.write(0xCD, 8)
        assert w.getvalue() == b"\xab\xcd"

    def test_partial_byte_zero_padded(self):
        w = BitWriter()
        w.write(0b101, 3)
        assert w.getvalue() == bytes([0b101])

    def test_value_too_wide_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(4, 2)

    def test_align_fill_ones(self):
        w = BitWriter()
        w.write(0, 1)
        w.align_to_byte(fill=1)
        assert w.getvalue() == bytes([0b11111110])

    def test_write_bytes_requires_alignment(self):
        w = BitWriter()
        w.write(1, 1)
        with pytest.raises(ValueError):
            w.write_bytes(b"x")

    def test_tell_bits(self):
        w = BitWriter()
        w.write(0, 5)
        assert w.tell_bits() == 5
        w.write(0, 5)
        assert w.tell_bits() == 10

    def test_write_reversed_matches_manual(self):
        w1 = BitWriter()
        w1.write_reversed(0b110, 3)
        w2 = BitWriter()
        w2.write(0b011, 3)
        assert w1.getvalue() == w2.getvalue()


class TestRoundTrip:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=2**16 - 1),
                      st.integers(min_value=1, max_value=16)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_writer_reader_round_trip(self, fields):
        """Writing arbitrary (value, width) fields and reading them back."""
        w = BitWriter()
        expected = []
        for value, width in fields:
            value &= (1 << width) - 1
            w.write(value, width)
            expected.append((value, width))
        r = BitReader(w.getvalue())
        for value, width in expected:
            assert r.read(width) == value

    @given(st.binary(min_size=1, max_size=64),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=100, deadline=None)
    def test_start_bit_equals_skip(self, data, skew):
        """BitReader(data, k) sees exactly what read(k)-then-read sees."""
        a = BitReader(data, start_bit=skew)
        b = BitReader(data)
        b.read(skew)
        n = min(32, a.bits_remaining())
        assert a.read(n) == b.read(n)
