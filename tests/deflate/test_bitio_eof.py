"""BitReader end-of-buffer semantics: 0-7 trailing bits (PR 5 sweep).

The block-start probing code in :mod:`repro.core.sync` /
:mod:`repro.core.guess` routinely peeks a full decode-table window past
the last block of a stream, so the tail contract must hold exactly:

* ``peek(n)`` with ``k = bits_remaining() < n`` returns the ``k`` real
  bits in the low positions and zero in bits ``k..n-1`` — never garbage,
  never an exception;
* ``consume``/``read`` past the end raise :class:`BitstreamError`;
* ``bits_remaining()`` counts down exactly.

Also pins the bulk-refill fix: one refill now tops the buffer up to
>= 57 bits whenever that much data remains, so ``peek(57)`` /
``read(57)`` mid-stream see real bits.  (The previous 63-bit refill
ceiling could leave only 56 bits after refilling from empty, making
``peek(57)`` silently zero-pad bit 56 and ``read(57)`` raise spuriously
in the middle of a perfectly good stream.)
"""

from __future__ import annotations

import pytest

from repro.deflate.bitio import BitReader
from repro.errors import BitstreamError

ALL_ONES = b"\xff" * 4


class TestTrailingBits:
    @pytest.mark.parametrize("trailing", range(8))
    def test_bits_remaining_counts_down(self, trailing):
        r = BitReader(ALL_ONES, 32 - trailing)
        assert r.bits_remaining() == trailing
        assert r.tell_bits() == 32 - trailing

    @pytest.mark.parametrize("trailing", range(8))
    def test_peek_zero_pads_past_end(self, trailing):
        # All-ones data: every real bit peeks as 1, every padded bit as 0,
        # so the boundary position is unambiguous.
        r = BitReader(ALL_ONES, 32 - trailing)
        assert r.peek(8) == (1 << trailing) - 1
        # Peeking must not advance or corrupt the cursor.
        assert r.bits_remaining() == trailing
        assert r.peek(8) == (1 << trailing) - 1

    @pytest.mark.parametrize("trailing", range(8))
    def test_consume_exactly_remaining(self, trailing):
        r = BitReader(ALL_ONES, 32 - trailing)
        r.peek(8)
        if trailing:
            r.consume(trailing)
        assert r.bits_remaining() == 0
        assert r.tell_bits() == 32

    @pytest.mark.parametrize("trailing", range(8))
    def test_consume_past_end_raises(self, trailing):
        r = BitReader(ALL_ONES, 32 - trailing)
        r.peek(8)  # zero-padded peek is fine ...
        with pytest.raises(BitstreamError):
            r.consume(trailing + 1)  # ... consuming the padding is not

    @pytest.mark.parametrize("trailing", range(8))
    def test_read_exactly_remaining_then_raises(self, trailing):
        r = BitReader(ALL_ONES, 32 - trailing)
        assert r.read(trailing) == (1 << trailing) - 1
        with pytest.raises(BitstreamError):
            r.read(1)

    @pytest.mark.parametrize("trailing", range(8))
    def test_error_reports_position(self, trailing):
        r = BitReader(ALL_ONES, 32 - trailing)
        with pytest.raises(BitstreamError) as exc_info:
            r.read(trailing + 1)
        assert exc_info.value.stage == "bitio"


class TestWideRefill:
    """The 57-bit guarantee of a single refill (regression tests)."""

    def test_peek_57_mid_stream_is_real_data(self):
        # Bit 56 of all-ones data is 1; the pre-fix refill stopped at 56
        # buffered bits and zero-padded it.
        r = BitReader(b"\xff" * 16)
        assert r.peek(57) == (1 << 57) - 1

    def test_read_57_mid_stream_does_not_raise(self):
        data = bytes(range(16))
        r = BitReader(data)
        value = r.read(57)
        assert value == int.from_bytes(data[:8], "little") & ((1 << 57) - 1)
        assert r.tell_bits() == 57

    def test_peek_57_with_56_remaining_zero_pads(self):
        r = BitReader(b"\xff" * 7)  # 56 bits total
        assert r.bits_remaining() == 56
        assert r.peek(57) == (1 << 56) - 1

    @pytest.mark.parametrize("skew", range(8))
    def test_skewed_start_peek_consume_roundtrip(self, skew):
        data = bytes((37 * i + 11) & 0xFF for i in range(12))
        r = BitReader(data, skew)
        want = (int.from_bytes(data, "little") >> skew) & ((1 << 57) - 1)
        assert r.peek(57) == want
        r.consume(57)
        assert r.tell_bits() == skew + 57
