"""Property tests for the bit/byte unit conversions and BitReader offsets.

The REP009 dataflow rule assumes the conversions in :mod:`repro.units`
and the BitReader's position accounting agree on one invariant:

    ``bytes_to_bits(bits_to_bytes(b)) + intra_byte_bits(b) == b``

i.e. a bit offset decomposes exactly into a byte offset plus an
intra-byte remainder in ``[0, 8)``.  Hypothesis drives random offsets
and random read/align/seek programs against a model counter to pin the
invariant down at runtime, not just in the lattice.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate.bitio import BitReader
from repro.units import (
    BitOffset,
    bits_to_bytes,
    bytes_to_bits,
    ceil_bits_to_bytes,
    intra_byte_bits,
)

_offsets = st.integers(min_value=0, max_value=1 << 40)


@given(_offsets)
def test_bit_offset_roundtrip_decomposition(bit_offset):
    assert (
        bytes_to_bits(bits_to_bytes(bit_offset)) + intra_byte_bits(bit_offset)
        == bit_offset
    )


@given(_offsets)
def test_intra_byte_remainder_range(bit_offset):
    assert 0 <= intra_byte_bits(bit_offset) < 8


@given(_offsets)
def test_ceil_floor_bracket_the_offset(bit_offset):
    floor = bits_to_bytes(bit_offset)
    ceil = ceil_bits_to_bytes(bit_offset)
    assert floor <= ceil <= floor + 1
    assert (ceil == floor) == (intra_byte_bits(bit_offset) == 0)
    assert bytes_to_bits(ceil) >= bit_offset


@given(st.integers(min_value=0, max_value=1 << 30))
def test_bytes_to_bits_is_exact_inverse_on_aligned(byte_offset):
    bit = bytes_to_bits(byte_offset)
    assert bits_to_bytes(bit) == byte_offset
    assert intra_byte_bits(bit) == 0


# One program step: read n bits, align to the next byte boundary, or
# seek to an absolute bit offset (the latter given as a fraction of the
# stream so it is always in range).
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("read"), st.integers(min_value=0, max_value=25)),
        st.tuples(st.just("align"), st.just(0)),
        st.tuples(st.just("seek"), st.integers(min_value=0, max_value=10_000)),
    ),
    max_size=30,
)


@settings(max_examples=200)
@given(st.binary(min_size=1, max_size=64), _steps)
def test_reader_position_matches_model(data, steps):
    """tell_bits() tracks a plain integer model across arbitrary ops."""
    reader = BitReader(data)
    total = 8 * len(data)
    model = 0
    for op, arg in steps:
        if op == "read":
            nbits = min(arg, total - model)
            reader.read(nbits)
            model += nbits
        elif op == "align":
            reader.align_to_byte()
            model += -model % 8
            model = min(model, total)
        else:
            target = arg % (total + 1)
            reader.seek_bits(BitOffset(target))
            model = target
        pos = reader.tell_bits()
        assert pos == model
        # The decomposition invariant holds at every intermediate
        # position, not just for synthetic offsets.
        assert bytes_to_bits(bits_to_bytes(pos)) + intra_byte_bits(pos) == pos
        assert reader.bits_remaining() == total - model
