"""Hand-assembled DEFLATE streams: block-format edge cases.

These tests build streams bit by bit (using the compressor's own
header emitters plus manual symbol emission) to reach corners that
natural data rarely produces: empty dynamic blocks, cross-boundary
code-length repeats, invalid distance/length symbols, degenerate
one-symbol codes.
"""

import zlib

import pytest

from repro.deflate import constants as C
from repro.deflate.bitio import BitWriter
from repro.deflate.deflate import _build_dynamic_header, _emit_dynamic_header
from repro.deflate.huffman import HuffmanEncoder
from repro.deflate.inflate import inflate
from repro.errors import DeflateError, HuffmanError


def dynamic_block(lit_lengths, dist_lengths, emit, bfinal=True) -> bytes:
    """Assemble one dynamic block; ``emit(writer, lit_enc, dist_enc)``
    writes the symbol stream (EOB included by the caller)."""
    w = BitWriter()
    w.write(1 if bfinal else 0, 1)
    w.write(C.BTYPE_DYNAMIC, 2)
    hdr = _build_dynamic_header(list(lit_lengths), list(dist_lengths))
    _emit_dynamic_header(w, hdr)
    lit_enc = HuffmanEncoder(list(lit_lengths))
    dist_enc = HuffmanEncoder(list(dist_lengths)) if any(dist_lengths) else None
    emit(w, lit_enc, dist_enc)
    return w.getvalue()


def simple_litlen(symbols: dict[int, int]) -> list[int]:
    """Code lengths giving each mapped symbol the requested length."""
    lengths = [0] * C.NUM_LITLEN_SYMBOLS
    for sym, l in symbols.items():
        lengths[sym] = l
    return lengths


class TestEmptyAndDegenerate:
    def test_empty_dynamic_block(self):
        """A block containing only the end-of-block symbol."""
        lengths = simple_litlen({C.END_OF_BLOCK: 1, ord("x"): 1})
        raw = dynamic_block(
            lengths, [1] + [0] * 31,
            lambda w, le, de: le.write(w, C.END_OF_BLOCK),
        )
        result = inflate(raw)
        assert result.data == b""
        assert result.final_seen
        # zlib agrees the stream is valid.
        assert zlib.decompress(raw, wbits=-15) == b""

    def test_single_literal_block(self):
        lengths = simple_litlen({C.END_OF_BLOCK: 1, ord("Q"): 1})

        def emit(w, le, de):
            le.write(w, ord("Q"))
            le.write(w, C.END_OF_BLOCK)

        raw = dynamic_block(lengths, [1] + [0] * 31, emit)
        assert inflate(raw).data == b"Q"
        assert zlib.decompress(raw, wbits=-15) == b"Q"

    def test_one_bit_distance_code(self):
        """Degenerate single-symbol distance code (RFC-permitted)."""
        lengths = simple_litlen({C.END_OF_BLOCK: 2, ord("a"): 2, ord("b"): 2, 257: 2})
        dist_lengths = [1] + [0] * 31  # only distance code 0 (dist=1)

        def emit(w, le, de):
            le.write(w, ord("a"))
            le.write(w, ord("b"))
            le.write(w, 257)   # length 3
            de.write(w, 0)     # distance 1 -> "bbb"
            le.write(w, C.END_OF_BLOCK)

        raw = dynamic_block(lengths, dist_lengths, emit)
        assert inflate(raw).data == b"abbbb"
        assert zlib.decompress(raw, wbits=-15) == b"abbbb"


class TestInvalidSymbols:
    def test_invalid_distance_symbol_30(self):
        """Distance codes 30/31 may be *declared* but never used."""
        lengths = simple_litlen({C.END_OF_BLOCK: 2, ord("a"): 2, 257: 2})
        dist_lengths = [0] * 32
        dist_lengths[0] = 1
        dist_lengths[30] = 1  # declared

        def emit(w, le, de):
            le.write(w, ord("a"))
            le.write(w, 257)
            de.write(w, 30)  # invalid use
            le.write(w, C.END_OF_BLOCK)

        raw = dynamic_block(lengths, dist_lengths, emit)
        with pytest.raises(DeflateError):
            inflate(raw)
        with pytest.raises(zlib.error):
            zlib.decompress(raw, wbits=-15)

    def test_invalid_length_symbol_286(self):
        lengths = simple_litlen({C.END_OF_BLOCK: 2, ord("a"): 2, 286: 2})
        dist_lengths = [1] + [0] * 31

        def emit(w, le, de):
            le.write(w, ord("a"))
            le.write(w, 286)  # reserved litlen symbol
            le.write(w, C.END_OF_BLOCK)

        raw = dynamic_block(lengths, dist_lengths, emit)
        with pytest.raises(DeflateError):
            inflate(raw)
        with pytest.raises(zlib.error):
            zlib.decompress(raw, wbits=-15)

    def test_match_with_no_distance_code(self):
        """HDIST table all-zero is legal only without matches."""
        lengths = simple_litlen({C.END_OF_BLOCK: 2, ord("a"): 2, 257: 2})

        def emit(w, le, de):
            le.write(w, ord("a"))
            le.write(w, 257)   # length... but no distance table
            # Write a stray bit so the distance decode has something.
            w.write(0, 1)
            le.write(w, C.END_OF_BLOCK)

        raw = dynamic_block(lengths, [0] * 32, emit)
        with pytest.raises(DeflateError):
            inflate(raw)

    def test_distance_beyond_history(self):
        """A distance reaching before stream start must fail (byte
        domain; strict mode assumes a context instead)."""
        lengths = simple_litlen({C.END_OF_BLOCK: 2, ord("a"): 2, 257: 2})
        dist_lengths = [0] * 32
        dist_lengths[10] = 1  # base distance 33, no extra bits... has 4 extra

        def emit(w, le, de):
            le.write(w, ord("a"))
            le.write(w, 257)
            de.write(w, 10)
            w.write(0, C.DIST_EXTRA_BITS[10])  # distance = 33 > history 1
            le.write(w, C.END_OF_BLOCK)

        raw = dynamic_block(lengths, dist_lengths, emit)
        with pytest.raises(DeflateError):
            inflate(raw)
        with pytest.raises(zlib.error):
            zlib.decompress(raw, wbits=-15)


class TestHeaderBoundaries:
    def test_repeat_crossing_litlen_dist_boundary(self):
        """RFC: code-length repeats may run from the litlen table into
        the dist table.  Our header builder RLE-encodes the combined
        sequence, so identical trailing/leading lengths exercise it."""
        # litlen ends with a run of 2-length codes; dist begins with
        # 2-length codes: the RLE must merge across the boundary.
        # (EOB gets length 1 so the litlen code is complete.)
        lengths = simple_litlen({C.END_OF_BLOCK: 1, ord("a"): 2, ord("b"): 2})
        dist_lengths = [2, 2, 2, 2] + [0] * 28

        def emit(w, le, de):
            le.write(w, ord("a"))
            le.write(w, C.END_OF_BLOCK)

        raw = dynamic_block(lengths, dist_lengths, emit)
        assert inflate(raw).data == b"a"
        assert zlib.decompress(raw, wbits=-15) == b"a"

    def test_max_length_and_distance_codes(self):
        """Length 258 (code 285) at distance 24577+ (code 29)."""
        prefix = bytes(range(256)) * 100  # 25.6 KB history
        body = prefix[:258]
        data = prefix + body
        from repro.deflate.deflate import compress_tokens
        from repro.deflate.tokens import TokenStream

        ts = TokenStream()
        for byte in prefix:
            ts.add_literal(byte)
        ts.add_match(len(prefix), 258)
        raw = compress_tokens(data, ts)
        assert zlib.decompress(raw, wbits=-15) == data
        assert inflate(raw).data == data

    def test_all_distance_codes_round_trip(self):
        """Exercise every distance code 0..29 through both codecs."""
        from repro.deflate.deflate import compress_tokens
        from repro.deflate.tokens import TokenStream

        history = bytes((i * 37) % 251 for i in range(32768))
        ts = TokenStream()
        out = bytearray()
        for byte in history:
            ts.add_literal(byte)
        out += history
        for code in range(30):
            dist = C.DIST_BASE[code]
            ts.add_match(dist, 3)
            # LZ77 semantics: byte-by-byte so overlapping (dist < 3)
            # copies replicate progressively.
            for _ in range(3):
                out.append(out[len(out) - dist])
        data = bytes(out)
        raw = compress_tokens(data, ts)
        assert zlib.decompress(raw, wbits=-15) == data
        assert inflate(raw).data == data
