"""The RFC 1951 constant tables, validated against the specification."""

import numpy as np
import pytest

from repro.deflate import constants as C


class TestLengthTables:
    def test_29_length_codes(self):
        assert len(C.LENGTH_BASE) == len(C.LENGTH_EXTRA_BITS) == 29

    def test_length_ranges_tile_3_to_258(self):
        """Every length in [3, 258] is encodable by exactly the code
        LENGTH_TO_CODE assigns, and the ranges are contiguous."""
        covered = set()
        for idx, (base, extra) in enumerate(zip(C.LENGTH_BASE, C.LENGTH_EXTRA_BITS)):
            hi = base + (1 << extra) - 1
            if idx == 28:  # code 285: exactly 258
                hi = base
            covered.update(range(base, hi + 1))
        assert covered == set(range(3, 259))

    def test_rfc_spot_values(self):
        # RFC 1951 section 3.2.5 table rows.
        assert C.LENGTH_BASE[0] == 3 and C.LENGTH_EXTRA_BITS[0] == 0    # code 257
        assert C.LENGTH_BASE[8] == 11 and C.LENGTH_EXTRA_BITS[8] == 1   # code 265
        assert C.LENGTH_BASE[20] == 67 and C.LENGTH_EXTRA_BITS[20] == 4  # code 277
        assert C.LENGTH_BASE[28] == 258 and C.LENGTH_EXTRA_BITS[28] == 0  # code 285

    def test_length_to_code_inverse(self):
        for length in range(3, 259):
            code = int(C.LENGTH_TO_CODE[length])
            idx = code - 257
            base = C.LENGTH_BASE[idx]
            extra = C.LENGTH_EXTRA_BITS[idx]
            assert base <= length <= base + (1 << extra) - 1

    def test_258_uses_code_285(self):
        """zlib/gzip always encode 258 with the zero-extra-bit code."""
        assert int(C.LENGTH_TO_CODE[258]) == 285


class TestDistanceTables:
    def test_30_distance_codes(self):
        assert len(C.DIST_BASE) == len(C.DIST_EXTRA_BITS) == 30

    def test_distance_ranges_tile_1_to_32768(self):
        covered = set()
        for base, extra in zip(C.DIST_BASE, C.DIST_EXTRA_BITS):
            covered.update(range(base, base + (1 << extra)))
        assert covered == set(range(1, 32769))

    def test_rfc_spot_values(self):
        assert C.DIST_BASE[0] == 1 and C.DIST_EXTRA_BITS[0] == 0
        assert C.DIST_BASE[9] == 25 and C.DIST_EXTRA_BITS[9] == 3
        assert C.DIST_BASE[29] == 24577 and C.DIST_EXTRA_BITS[29] == 13

    def test_dist_to_code_inverse(self):
        for dist in (1, 2, 4, 5, 24, 25, 192, 193, 24576, 24577, 32768):
            code = int(C.DIST_TO_CODE[dist])
            base = C.DIST_BASE[code]
            extra = C.DIST_EXTRA_BITS[code]
            assert base <= dist <= base + (1 << extra) - 1


class TestFixedCodes:
    def test_fixed_litlen_structure(self):
        """RFC 1951 3.2.6: 0-143 -> 8 bits, 144-255 -> 9, 256-279 -> 7,
        280-287 -> 8."""
        lengths = C.fixed_litlen_lengths()
        assert len(lengths) == 288
        assert all(l == 8 for l in lengths[0:144])
        assert all(l == 9 for l in lengths[144:256])
        assert all(l == 7 for l in lengths[256:280])
        assert all(l == 8 for l in lengths[280:288])

    def test_fixed_dist_five_bits(self):
        assert C.fixed_dist_lengths() == (5,) * 32

    def test_fixed_codes_complete(self):
        from repro.deflate.huffman import kraft_sum

        total, max_bits = kraft_sum(C.fixed_litlen_lengths())
        assert total == 1 << max_bits


class TestCodelenOrder:
    def test_rfc_order(self):
        assert C.CODELEN_ORDER == (
            16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
        )

    def test_permutation_of_alphabet(self):
        assert sorted(C.CODELEN_ORDER) == list(range(19))


class TestAsciiMask:
    def test_allowed_set(self):
        assert C.ASCII_MASK[9] and C.ASCII_MASK[10] and C.ASCII_MASK[13]
        assert C.ASCII_MASK[32] and C.ASCII_MASK[126]
        assert not C.ASCII_MASK[0]
        assert not C.ASCII_MASK[127]
        assert not C.ASCII_MASK[255]

    def test_mask_matches_set(self):
        for b in range(256):
            assert bool(C.ASCII_MASK[b]) == (b in C.ASCII_ALLOWED)


class TestWindowGeometry:
    def test_paper_constants(self):
        assert C.WINDOW_SIZE == 32768
        assert C.MIN_MATCH == 3
        assert C.MAX_MATCH == 258
        assert C.PROBE_MIN_BLOCK == 1024
        assert C.PROBE_MAX_BLOCK == 4 * 1024 * 1024
