"""CRC-32 and Adler-32 against the zlib reference implementations."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate.adler import adler32
from repro.deflate.crc32 import Crc32, crc32, crc32_combine


class TestCrc32Values:
    def test_empty(self):
        assert crc32(b"") == 0
        assert crc32(b"") == zlib.crc32(b"")

    def test_known_vector(self):
        # The classic check value for CRC-32.
        assert crc32(b"123456789") == 0xCBF43926

    def test_matches_zlib_ascii(self):
        data = b"The quick brown fox jumps over the lazy dog"
        assert crc32(data) == zlib.crc32(data)

    def test_matches_zlib_binary(self):
        data = bytes(range(256)) * 7
        assert crc32(data) == zlib.crc32(data)

    def test_incremental_matches_oneshot(self):
        data = b"abcdefghij" * 100
        c = crc32(data[:300])
        c = crc32(data[300:], c)
        assert c == crc32(data)

    @given(st.binary(max_size=512))
    @settings(max_examples=100, deadline=None)
    def test_matches_zlib_random(self, data):
        assert crc32(data) == zlib.crc32(data)

    @given(st.binary(max_size=256), st.binary(max_size=256))
    @settings(max_examples=50, deadline=None)
    def test_chaining_matches_zlib(self, a, b):
        assert crc32(b, crc32(a)) == zlib.crc32(b, zlib.crc32(a))


class TestCrc32Accumulator:
    def test_accumulator_tracks_value_and_length(self):
        acc = Crc32()
        acc.update(b"hello ")
        acc.update(b"world")
        assert acc.value == crc32(b"hello world")
        assert acc.length == 11

    def test_empty_accumulator(self):
        acc = Crc32()
        assert acc.value == 0
        assert acc.length == 0


class TestCrc32Combine:
    def test_combine_two_halves(self):
        a, b = b"first half|", b"second half"
        combined = crc32_combine(crc32(a), crc32(b), len(b))
        assert combined == crc32(a + b)

    def test_combine_empty_second(self):
        a = b"only part"
        assert crc32_combine(crc32(a), 0, 0) == crc32(a)

    def test_combine_matches_zlib(self):
        # zlib.crc32_combine is not exposed in Python, so verify
        # against direct computation over many splits.
        data = bytes(range(256)) * 3
        for split in (0, 1, 7, 128, 500, len(data)):
            a, b = data[:split], data[split:]
            assert crc32_combine(crc32(a), crc32(b), len(b)) == crc32(data)

    @given(st.binary(max_size=200), st.binary(max_size=200), st.binary(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_combine_associative(self, a, b, c):
        whole = crc32(a + b + c)
        ab = crc32_combine(crc32(a), crc32(b), len(b))
        abc = crc32_combine(ab, crc32(c), len(c))
        assert abc == whole


class TestAdler32:
    def test_empty(self):
        assert adler32(b"") == 1 == zlib.adler32(b"")

    def test_known_vector(self):
        assert adler32(b"Wikipedia") == 0x11E60398

    def test_incremental(self):
        data = b"x" * 10000
        v = adler32(data[:4000])
        assert adler32(data[4000:], v) == adler32(data)

    def test_long_input_deferred_modulo(self):
        # Exceeds the NMAX deferral window; checks the modulo batching.
        data = b"\xff" * 20000
        assert adler32(data) == zlib.adler32(data)

    @given(st.binary(max_size=1024))
    @settings(max_examples=100, deadline=None)
    def test_matches_zlib_random(self, data):
        assert adler32(data) == zlib.adler32(data)
