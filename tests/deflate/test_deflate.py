"""Compressor: zlib interoperability, block-type choice, edge cases."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate import constants as C
from repro.deflate.deflate import compress_tokens, deflate_compress
from repro.deflate.inflate import inflate, inflate_bytes
from repro.deflate.lz77 import parse_lz77
from repro.deflate.tokens import TokenStream


def zlib_inflate_raw(raw: bytes) -> bytes:
    return zlib.decompress(raw, wbits=-15)


class TestZlibDecodesOurOutput:
    @pytest.mark.parametrize("level", [0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
    def test_all_levels_on_text(self, level, mixed_text):
        data = mixed_text[:30000]
        assert zlib_inflate_raw(deflate_compress(data, level)) == data

    @pytest.mark.parametrize("level", [1, 6, 9])
    def test_dna(self, level, dna_100k):
        data = dna_100k[:50000]
        assert zlib_inflate_raw(deflate_compress(data, level)) == data

    def test_empty_input(self):
        assert zlib_inflate_raw(deflate_compress(b"", 6)) == b""
        assert zlib_inflate_raw(deflate_compress(b"", 0)) == b""

    def test_single_byte(self):
        assert zlib_inflate_raw(deflate_compress(b"Q", 6)) == b"Q"

    def test_binary(self):
        data = bytes(range(256)) * 100
        assert zlib_inflate_raw(deflate_compress(data, 9)) == data

    def test_weak_persona_interops(self, dna_100k):
        data = dna_100k[:40000]
        raw = deflate_compress(data, 1, min_match=8)
        assert zlib_inflate_raw(raw) == data

    @given(st.binary(max_size=5000), st.sampled_from([0, 1, 5, 6, 9]))
    @settings(max_examples=60, deadline=None)
    def test_property_zlib_decodes_random(self, data, level):
        assert zlib_inflate_raw(deflate_compress(data, level)) == data


class TestSelfRoundTrip:
    @pytest.mark.parametrize("level", [0, 1, 6, 9])
    def test_own_inflate(self, level, fastq_small):
        raw = deflate_compress(fastq_small, level)
        assert inflate_bytes(raw) == fastq_small

    @given(st.binary(max_size=4000))
    @settings(max_examples=60, deadline=None)
    def test_property_own_round_trip(self, data):
        assert inflate_bytes(deflate_compress(data, 6)) == data


class TestCompressionQuality:
    def test_ratio_close_to_zlib_on_dna(self, dna_100k):
        ours = len(deflate_compress(dna_100k, 6))
        theirs = len(zlib.compress(dna_100k, 6)) - 6  # container overhead
        assert ours < theirs * 1.05, "our level-6 should be within 5% of zlib"

    def test_levels_monotone_in_effort(self, mixed_text):
        data = mixed_text[:60000]
        sizes = {lvl: len(deflate_compress(data, lvl)) for lvl in (1, 6, 9)}
        assert sizes[9] <= sizes[6] <= sizes[1] * 1.02

    def test_incompressible_falls_back_to_stored(self):
        import os

        data = os.urandom(30000)
        raw = deflate_compress(data, 6)
        assert len(raw) < len(data) + 200  # stored overhead only
        result = inflate(raw)
        assert any(b.btype == C.BTYPE_STORED for b in result.blocks)

    def test_level0_is_stored(self):
        data = b"compressible " * 1000
        result = inflate(deflate_compress(data, 0))
        assert all(b.btype == C.BTYPE_STORED for b in result.blocks)
        assert result.data == data

    def test_level0_block_size_cap(self):
        data = b"z" * 200_000
        result = inflate(deflate_compress(data, 0))
        assert len(result.blocks) == -(-len(data) // 65535)

    def test_multi_block_emission(self, fastq_medium):
        raw = deflate_compress(fastq_medium[:400_000], 6, block_tokens=4096)
        result = inflate(raw)
        assert len(result.blocks) > 5
        assert result.data == fastq_medium[:400_000]


class TestCompressTokens:
    def test_hand_built_token_stream(self):
        data = b"abcabcabcabc"
        ts = TokenStream()
        for b in b"abc":
            ts.add_literal(b)
        ts.add_match(3, 9)
        raw = compress_tokens(data, ts)
        assert zlib_inflate_raw(raw) == data

    def test_empty_token_stream(self):
        raw = compress_tokens(b"", TokenStream())
        assert zlib_inflate_raw(raw) == b""

    def test_max_length_match(self):
        data = b"R" * 300
        ts = TokenStream()
        ts.add_literal(ord("R"))
        ts.add_match(1, 258)
        for _ in range(300 - 259):
            ts.add_literal(ord("R"))
        raw = compress_tokens(data, ts)
        assert zlib_inflate_raw(raw) == data

    def test_max_distance_match(self):
        prefix = b"S" + bytes(32766) + b"S"  # distance 32768 apart - 1
        data = prefix + b"XYZ" + (b"." * 32765) + b"XYZ"
        ts = parse_lz77(data, 6)
        raw = compress_tokens(data, ts)
        assert zlib_inflate_raw(raw) == data

    def test_all_byte_values_as_literals(self):
        data = bytes(range(256))
        ts = TokenStream()
        for b in data:
            ts.add_literal(b)
        assert zlib_inflate_raw(compress_tokens(data, ts)) == data
