"""Differential fuzz: optimized decode vs reference decoders (PR 5/9).

The hot-path rewrite must not drift by a single byte or bit.  Each
seeded stream is decoded three ways and cross-checked:

* ``zlib.decompress`` — the external ground truth for output bytes;
* the optimized fast loop (``inflate`` without token capture) — the
  path PR 5 rewrote;
* the general loop (``inflate`` with ``capture_tokens=True``), which is
  the pre-optimization per-symbol decoder kept for strict/token mode —
  so fast-vs-general is literally optimized-vs-pre-optimization;
* ``marker_inflate`` from a fully known (empty) context, whose symbol
  stream must equal the byte stream exactly.

Byte output must be identical across all four, and the final bit
positions of the three in-repo decoders must agree exactly.

PR 9 widens the matrix with the two-stage vectorized kernel: every
seeded stream additionally decodes under ``kernel="pure"`` and
``kernel="numpy"`` in *both* domains (byte and marker), and the pair
must agree on output bytes/symbols, final bit position, block table,
captured tokens, and the marker window — including through the
recovery paths (pugz salvage around deliberately smashed blocks).

~50 streams: 10 seeds x 5 stream shapes (stored blocks, fixed-Huffman,
dynamic at two levels, sync-flush seams), over random-DNA and
FASTQ-like corpora.  Runs in tier-1 (small inputs, a few seconds).
"""

from __future__ import annotations

import random
import zlib

import numpy as np
import pytest

from repro.core.marker_inflate import marker_inflate
from repro.core.pugz import pugz_decompress_payload
from repro.deflate.inflate import inflate

SEEDS = range(10)


def make_text(seed: int, n: int = 24_000) -> bytes:
    """Seeded random-DNA/FASTQ-like text (alternates shape by seed)."""
    rng = random.Random(0xF52 + seed)
    if seed % 2:
        return bytes(rng.choice(b"ACGT") for _ in range(n))
    out = bytearray()
    rid = 0
    while len(out) < n:
        rid += 1
        k = rng.randint(60, 90)
        seq = bytes(rng.choice(b"ACGT") for _ in range(k))
        qual = bytes(rng.randint(33, 73) for _ in range(k))
        out += b"@read%d\n" % rid + seq + b"\n+\n" + qual + b"\n"
    return bytes(out[:n])


def compress_shape(text: bytes, shape: str) -> bytes:
    """Raw DEFLATE stream of ``text`` in the requested block shape."""
    if shape == "stored":
        co = zlib.compressobj(0, zlib.DEFLATED, -15)
        return co.compress(text) + co.flush()
    if shape == "fixed":
        co = zlib.compressobj(6, zlib.DEFLATED, -15, 8, zlib.Z_FIXED)
        return co.compress(text) + co.flush()
    if shape == "dynamic_fast":
        co = zlib.compressobj(1, zlib.DEFLATED, -15)
        return co.compress(text) + co.flush()
    if shape == "dynamic_best":
        co = zlib.compressobj(9, zlib.DEFLATED, -15)
        return co.compress(text) + co.flush()
    if shape == "sync_flush":
        co = zlib.compressobj(6, zlib.DEFLATED, -15)
        third = len(text) // 3
        return (
            co.compress(text[:third])
            + co.flush(zlib.Z_SYNC_FLUSH)
            + co.compress(text[third : 2 * third])
            + co.flush(zlib.Z_SYNC_FLUSH)
            + co.compress(text[2 * third :])
            + co.flush()
        )
    raise AssertionError(shape)


SHAPES = ("stored", "fixed", "dynamic_fast", "dynamic_best", "sync_flush")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_differential_decode(seed: int, shape: str):
    text = make_text(seed)
    payload = compress_shape(text, shape)
    reference = zlib.decompress(payload, -15)
    assert reference == text  # corpus sanity

    fast = inflate(payload)
    general = inflate(payload, capture_tokens=True)
    markers = marker_inflate(payload, window=b"")

    # Byte-identical output across every decoder.
    assert fast.data == reference
    assert general.data == reference
    assert bytes(markers.symbols.astype(np.uint8)) == reference

    # Identical final bit positions (the fast loop's buffer writeback
    # must land the cursor exactly where the per-symbol loop does).
    assert fast.end_bit == general.end_bit
    assert markers.end_bit == fast.end_bit
    assert fast.final_seen and general.final_seen and markers.final_seen

    # Identical block structure.
    assert [
        (b.start_bit, b.end_bit, b.out_start, b.out_end, b.btype, b.bfinal)
        for b in fast.blocks
    ] == [
        (b.start_bit, b.end_bit, b.out_start, b.out_end, b.btype, b.bfinal)
        for b in general.blocks
    ]


def _block_tuples(blocks):
    return [
        (b.start_bit, b.end_bit, b.out_start, b.out_end, b.btype, b.bfinal)
        for b in blocks
    ]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_kernel_differential(seed: int, shape: str):
    """The vectorized kernel is bit-for-bit equal to the pure one.

    Covers both domains: byte-output ``inflate`` (with and without
    token capture) and marker-domain ``marker_inflate`` from an
    undetermined context.  The explicit ``kernel="numpy"`` argument
    bypasses the auto-selection size gate, so the small fuzz streams
    genuinely exercise the vectorized path.
    """
    text = make_text(seed)
    payload = compress_shape(text, shape)
    reference = zlib.decompress(payload, -15)

    p = inflate(payload, kernel="pure")
    n = inflate(payload, kernel="numpy")
    assert n.data == p.data == reference
    assert n.end_bit == p.end_bit
    assert n.final_seen == p.final_seen
    assert _block_tuples(n.blocks) == _block_tuples(p.blocks)

    pt = inflate(payload, capture_tokens=True, kernel="pure")
    nt = inflate(payload, capture_tokens=True, kernel="numpy")
    assert nt.data == pt.data == reference
    assert nt.end_bit == pt.end_bit
    assert np.array_equal(nt.tokens.offsets(), pt.tokens.offsets())
    assert np.array_equal(nt.tokens.values(), pt.tokens.values())

    mp = marker_inflate(payload, kernel="pure")
    mn = marker_inflate(payload, kernel="numpy")
    assert np.array_equal(mn.symbols, mp.symbols)
    assert mn.end_bit == mp.end_bit
    assert mn.final_seen == mp.final_seen
    assert mn.total_output == mp.total_output
    assert np.array_equal(mn.window, mp.window)
    assert _block_tuples(mn.blocks) == _block_tuples(mp.blocks)


@pytest.mark.parametrize("seed", range(5))
def test_kernel_differential_recovery(seed: int):
    """Recovery paths agree between kernels on corrupted streams.

    Each seeded stream gets one block header smashed mid-stream; pugz
    in recover mode must salvage the identical output, hole table, and
    per-chunk outcomes under both kernels.
    """
    text = make_text(seed, n=60_000)
    payload = compress_shape(text, "sync_flush")
    blocks = inflate(payload).blocks
    if len(blocks) < 3:
        pytest.skip("stream produced too few blocks to corrupt safely")
    target = blocks[len(blocks) // 2]
    byte0 = target.start_bit // 8
    bad = bytearray(payload)
    bad[byte0 + 1 : byte0 + 4] = b"\xff\xff\xff"
    bad = bytes(bad)

    results = {}
    for k in ("pure", "numpy"):
        from repro.core.pugz import PugzReport

        report = PugzReport(n_chunks_requested=3)
        out = pugz_decompress_payload(
            bad, 0, 8 * len(bad), n_chunks=3, report=report,
            on_error="recover", kernel=k,
        )
        results[k] = (
            out,
            [h.to_dict() for h in report.holes],
            report.chunk_outcomes,
            report.unresolved_markers,
        )
    assert results["pure"] == results["numpy"]
