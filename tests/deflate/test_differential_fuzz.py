"""Differential fuzz: optimized decode vs reference decoders (PR 5).

The hot-path rewrite must not drift by a single byte or bit.  Each
seeded stream is decoded three ways and cross-checked:

* ``zlib.decompress`` — the external ground truth for output bytes;
* the optimized fast loop (``inflate`` without token capture) — the
  path PR 5 rewrote;
* the general loop (``inflate`` with ``capture_tokens=True``), which is
  the pre-optimization per-symbol decoder kept for strict/token mode —
  so fast-vs-general is literally optimized-vs-pre-optimization;
* ``marker_inflate`` from a fully known (empty) context, whose symbol
  stream must equal the byte stream exactly.

Byte output must be identical across all four, and the final bit
positions of the three in-repo decoders must agree exactly.

~50 streams: 10 seeds x 5 stream shapes (stored blocks, fixed-Huffman,
dynamic at two levels, sync-flush seams), over random-DNA and
FASTQ-like corpora.  Runs in tier-1 (small inputs, a few seconds).
"""

from __future__ import annotations

import random
import zlib

import numpy as np
import pytest

from repro.core.marker_inflate import marker_inflate
from repro.deflate.inflate import inflate

SEEDS = range(10)


def make_text(seed: int, n: int = 24_000) -> bytes:
    """Seeded random-DNA/FASTQ-like text (alternates shape by seed)."""
    rng = random.Random(0xF52 + seed)
    if seed % 2:
        return bytes(rng.choice(b"ACGT") for _ in range(n))
    out = bytearray()
    rid = 0
    while len(out) < n:
        rid += 1
        k = rng.randint(60, 90)
        seq = bytes(rng.choice(b"ACGT") for _ in range(k))
        qual = bytes(rng.randint(33, 73) for _ in range(k))
        out += b"@read%d\n" % rid + seq + b"\n+\n" + qual + b"\n"
    return bytes(out[:n])


def compress_shape(text: bytes, shape: str) -> bytes:
    """Raw DEFLATE stream of ``text`` in the requested block shape."""
    if shape == "stored":
        co = zlib.compressobj(0, zlib.DEFLATED, -15)
        return co.compress(text) + co.flush()
    if shape == "fixed":
        co = zlib.compressobj(6, zlib.DEFLATED, -15, 8, zlib.Z_FIXED)
        return co.compress(text) + co.flush()
    if shape == "dynamic_fast":
        co = zlib.compressobj(1, zlib.DEFLATED, -15)
        return co.compress(text) + co.flush()
    if shape == "dynamic_best":
        co = zlib.compressobj(9, zlib.DEFLATED, -15)
        return co.compress(text) + co.flush()
    if shape == "sync_flush":
        co = zlib.compressobj(6, zlib.DEFLATED, -15)
        third = len(text) // 3
        return (
            co.compress(text[:third])
            + co.flush(zlib.Z_SYNC_FLUSH)
            + co.compress(text[third : 2 * third])
            + co.flush(zlib.Z_SYNC_FLUSH)
            + co.compress(text[2 * third :])
            + co.flush()
        )
    raise AssertionError(shape)


SHAPES = ("stored", "fixed", "dynamic_fast", "dynamic_best", "sync_flush")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_differential_decode(seed: int, shape: str):
    text = make_text(seed)
    payload = compress_shape(text, shape)
    reference = zlib.decompress(payload, -15)
    assert reference == text  # corpus sanity

    fast = inflate(payload)
    general = inflate(payload, capture_tokens=True)
    markers = marker_inflate(payload, window=b"")

    # Byte-identical output across every decoder.
    assert fast.data == reference
    assert general.data == reference
    assert bytes(markers.symbols.astype(np.uint8)) == reference

    # Identical final bit positions (the fast loop's buffer writeback
    # must land the cursor exactly where the per-symbol loop does).
    assert fast.end_bit == general.end_bit
    assert markers.end_bit == fast.end_bit
    assert fast.final_seen and general.final_seen and markers.final_seen

    # Identical block structure.
    assert [
        (b.start_bit, b.end_bit, b.out_start, b.out_end, b.btype, b.bfinal)
        for b in fast.blocks
    ] == [
        (b.start_bit, b.end_bit, b.out_start, b.out_end, b.btype, b.bfinal)
        for b in general.blocks
    ]
