"""Empty-member and empty-second-stream edges (PR 5 sweep).

A gzip member whose DEFLATE stream is a single stored block of length 0
(what ``gzip`` emits for an empty file, and what pigz emits between
sync points) must round-trip anywhere in a multi-member file, and
``crc32_combine`` must be exact for zero-length second streams.
"""

from __future__ import annotations

import gzip as stdlib_gzip
import zlib

import pytest

from repro.deflate.crc32 import Crc32, crc32, crc32_combine
from repro.deflate.deflate import gzip_compress
from repro.deflate.gzipfmt import (
    gzip_unwrap,
    gzip_wrap,
    member_payload,
    split_members,
    zlib_unwrap,
)
from repro.deflate.inflate import inflate

#: Raw DEFLATE stream: one stored block, BFINAL=1, LEN=0 — the smallest
#: legal DEFLATE stream (what ``zlib.compress(b"")`` emits at level 0).
EMPTY_STORED_FINAL = bytes([0x01, 0x00, 0x00, 0xFF, 0xFF])


class TestEmptyDeflateStream:
    def test_inflate_empty_stored_final(self):
        result = inflate(EMPTY_STORED_FINAL)
        assert result.data == b""
        assert result.final_seen
        assert len(result.blocks) == 1
        assert result.blocks[0].btype == 0
        assert result.blocks[0].out_start == result.blocks[0].out_end == 0

    def test_stdlib_accepts_our_empty_member(self):
        gz = gzip_wrap(EMPTY_STORED_FINAL, b"")
        assert stdlib_gzip.decompress(gz) == b""

    def test_our_compressor_empty_roundtrip(self):
        gz = gzip_compress(b"")
        assert gzip_unwrap(gz) == b""
        assert stdlib_gzip.decompress(gz) == b""


class TestEmptyMember:
    def test_single_empty_member(self):
        gz = gzip_wrap(EMPTY_STORED_FINAL, b"")
        assert gzip_unwrap(gz) == b""
        member = member_payload(gz)
        assert member.isize == 0
        assert member.crc == 0  # crc32(b"") == 0
        assert member.payload_end - member.payload_start == len(EMPTY_STORED_FINAL)

    @pytest.mark.parametrize("position", ["leading", "middle", "trailing"])
    def test_empty_member_in_multimember_file(self, position):
        data = b"ACGTACGT" * 64
        full_member = stdlib_gzip.compress(data, mtime=0)
        empty_member = gzip_wrap(EMPTY_STORED_FINAL, b"")
        layout = {
            "leading": (empty_member + full_member, data),
            "middle": (full_member + empty_member + full_member, data + data),
            "trailing": (full_member + empty_member, data),
        }
        blob, want = layout[position]
        assert gzip_unwrap(blob) == want
        n_members = 2 if position != "middle" else 3
        assert len(split_members(blob)) == n_members

    def test_empty_second_stream_zlib_container(self):
        # zlib container analogue: empty payload behind the 2-byte header.
        blob = zlib.compress(b"")
        assert zlib_unwrap(blob) == b""


class TestCrc32CombineEmpty:
    def test_combine_with_empty_second_stream(self):
        a = crc32(b"the first stream")
        assert crc32_combine(a, crc32(b""), 0) == a

    def test_combine_empty_first_stream(self):
        b = crc32(b"the second stream")
        assert crc32_combine(crc32(b""), b, len(b"the second stream")) == b

    def test_combine_both_empty(self):
        assert crc32_combine(0, 0, 0) == 0

    def test_combine_matches_zlib_on_empty_edges(self):
        for first, second in [(b"", b""), (b"abc", b""), (b"", b"xyz")]:
            ours = crc32_combine(crc32(first), crc32(second), len(second))
            assert ours == zlib.crc32(first + second)

    def test_parallel_chunk_stitch_with_empty_chunk(self):
        # The pugz CRC stitch: per-chunk CRCs combined left to right,
        # with one chunk empty (a chunk wholly inside a hole region).
        chunks = [b"chunk one ", b"", b"chunk three"]
        combined = 0
        for chunk in chunks:
            combined = crc32_combine(combined, crc32(chunk), len(chunk))
        assert combined == zlib.crc32(b"".join(chunks))

    def test_incremental_accumulator_empty_updates(self):
        acc = Crc32()
        acc.update(b"")
        acc.update(b"data")
        acc.update(b"")
        assert acc.value == zlib.crc32(b"data")
        assert acc.length == 4
