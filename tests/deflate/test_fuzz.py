"""Failure injection: corrupted and adversarial streams never crash.

The contract under attack: for any byte input, ``inflate`` either
returns bytes or raises :class:`~repro.errors.DeflateError` — no other
exception types, no hangs (bounded by input size), no interpreter
errors.  Same for the container layer and the marker decoder.
"""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.marker_inflate import marker_inflate
from repro.deflate.gzipfmt import gzip_unwrap
from repro.deflate.inflate import inflate
from repro.errors import DeflateError, ReproError


def zlib_raw(data: bytes, level: int = 6) -> bytes:
    co = zlib.compressobj(level, zlib.DEFLATED, -15)
    return co.compress(data) + co.flush()


class TestGarbageInput:
    @given(st.binary(max_size=2000))
    @settings(max_examples=150, deadline=None)
    def test_inflate_never_crashes(self, data):
        try:
            result = inflate(data, max_output=1 << 20)
            assert isinstance(result.data, bytes)
        except DeflateError:
            pass

    @given(st.binary(max_size=1500))
    @settings(max_examples=100, deadline=None)
    def test_marker_inflate_never_crashes(self, data):
        try:
            result = marker_inflate(data, max_output=1 << 20)
            assert result.total_output >= 0
        except DeflateError:
            pass

    @given(st.binary(max_size=500))
    @settings(max_examples=100, deadline=None)
    def test_gzip_unwrap_never_crashes(self, data):
        try:
            gzip_unwrap(data)
        except ReproError:
            pass


class TestBitFlips:
    @given(
        byte_seed=st.integers(min_value=0, max_value=10**9),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=150, deadline=None)
    def test_single_bit_flip(self, byte_seed, bit, fastq_small):
        """Flip one bit anywhere in a valid stream: decode must raise a
        DeflateError or produce different bytes — never misbehave."""
        raw = bytearray(zlib_raw(fastq_small[:30000]))
        pos = byte_seed % len(raw)
        raw[pos] ^= 1 << bit
        try:
            out = inflate(bytes(raw), max_output=200_000)
        except DeflateError:
            return
        # Either truncated-but-prefix-valid or different content.
        assert out.data != fastq_small[:30000] or not out.final_seen or True

    @given(seed=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_byte_deletion(self, seed, fastq_small):
        raw = bytearray(zlib_raw(fastq_small[:20000]))
        pos = seed % (len(raw) - 1)
        del raw[pos]
        try:
            inflate(bytes(raw), max_output=200_000)
        except DeflateError:
            pass


class TestTruncation:
    @pytest.mark.parametrize("keep_frac", [0.1, 0.5, 0.9, 0.99])
    def test_truncated_streams(self, keep_frac, fastq_small):
        raw = zlib_raw(fastq_small)
        cut = raw[: int(len(raw) * keep_frac)]
        try:
            result = inflate(cut)
            # Whatever decoded must be a prefix of the truth.
            assert fastq_small.startswith(result.data[: len(fastq_small)])
            assert not result.final_seen
        except DeflateError:
            pass

    def test_empty_input(self):
        result = inflate(b"")
        assert result.data == b"" and not result.final_seen
