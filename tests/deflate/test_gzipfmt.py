"""gzip/zlib container framing, multi-member files, trailer verification."""

import gzip as stdlib_gzip
import struct
import zlib

import pytest

from repro.deflate.deflate import deflate_compress, gzip_compress, zlib_compress
from repro.deflate.gzipfmt import (
    gzip_unwrap,
    gzip_wrap,
    member_payload,
    parse_gzip_header,
    split_members,
    zlib_unwrap,
    zlib_wrap,
)
from repro.errors import GzipFormatError


class TestGzipHeaders:
    def test_minimal_header(self):
        g = stdlib_gzip.compress(b"data", 6)
        pos, flags, mtime, filename, comment = parse_gzip_header(g)
        assert pos == 10
        assert filename is None

    def test_fname_field(self):
        g = gzip_compress(b"content", 6, filename=b"reads.fastq")
        pos, flags, mtime, filename, comment = parse_gzip_header(g)
        assert filename == b"reads.fastq"
        assert pos == 10 + len(b"reads.fastq") + 1

    def test_mtime_preserved(self):
        g = gzip_compress(b"x", 6, mtime=1234567890)
        _, _, mtime, _, _ = parse_gzip_header(g)
        assert mtime == 1234567890

    def test_bad_magic(self):
        with pytest.raises(GzipFormatError):
            parse_gzip_header(b"PK\x03\x04" + b"\x00" * 20)

    def test_truncated_header(self):
        with pytest.raises(GzipFormatError):
            parse_gzip_header(b"\x1f\x8b\x08")

    def test_unsupported_method(self):
        bad = b"\x1f\x8b\x07" + b"\x00" * 7
        with pytest.raises(GzipFormatError):
            parse_gzip_header(bad)

    def test_reserved_flags(self):
        bad = b"\x1f\x8b\x08\xe0" + b"\x00" * 6
        with pytest.raises(GzipFormatError):
            parse_gzip_header(bad)

    def test_fextra_skipped(self):
        # Hand-build a header with an EXTRA field.
        payload = deflate_compress(b"hello extra", 6)
        extra = b"AB\x04\x00abcd"
        header = b"\x1f\x8b\x08\x04" + b"\x00" * 6 + struct.pack("<H", len(extra)) + extra
        trailer = struct.pack("<II", zlib.crc32(b"hello extra"), 11)
        g = header + payload + trailer
        assert gzip_unwrap(g) == b"hello extra"

    def test_fcomment_and_fname(self):
        payload = deflate_compress(b"cc", 6)
        header = b"\x1f\x8b\x08" + bytes([8 | 16]) + b"\x00" * 6
        header += b"name.txt\x00a comment\x00"
        trailer = struct.pack("<II", zlib.crc32(b"cc"), 2)
        pos, flags, _, filename, comment = parse_gzip_header(header + payload + trailer)
        assert filename == b"name.txt"
        assert comment == b"a comment"


class TestRoundTrips:
    def test_ours_to_stdlib(self, fastq_small):
        g = gzip_compress(fastq_small, 6)
        assert stdlib_gzip.decompress(g) == fastq_small

    def test_stdlib_to_ours(self, fastq_small):
        g = stdlib_gzip.compress(fastq_small, 9)
        assert gzip_unwrap(g) == fastq_small

    def test_ours_to_ours(self, mixed_text):
        g = gzip_compress(mixed_text[:50000], 4)
        assert gzip_unwrap(g) == mixed_text[:50000]

    def test_zlib_container_ours_to_stdlib(self, dna_100k):
        z = zlib_compress(dna_100k[:20000], 6)
        assert zlib.decompress(z) == dna_100k[:20000]

    def test_zlib_container_stdlib_to_ours(self, dna_100k):
        z = zlib.compress(dna_100k[:20000], 6)
        assert zlib_unwrap(z) == dna_100k[:20000]

    def test_empty_file(self):
        assert gzip_unwrap(gzip_compress(b"")) == b""
        assert zlib_unwrap(zlib_compress(b"")) == b""


class TestTrailerVerification:
    def test_crc_mismatch_detected(self, fastq_small):
        g = bytearray(gzip_compress(fastq_small, 6))
        g[-5] ^= 0xFF  # corrupt CRC field
        with pytest.raises(GzipFormatError, match="CRC"):
            gzip_unwrap(bytes(g))

    def test_isize_mismatch_detected(self, fastq_small):
        g = bytearray(gzip_compress(fastq_small, 6))
        g[-1] ^= 0xFF  # corrupt ISIZE field
        with pytest.raises(GzipFormatError, match="ISIZE"):
            gzip_unwrap(bytes(g))

    def test_verification_can_be_skipped(self, fastq_small):
        g = bytearray(gzip_compress(fastq_small, 6))
        g[-5] ^= 0xFF
        assert gzip_unwrap(bytes(g), verify=False) == fastq_small

    def test_truncated_trailer(self):
        g = gzip_compress(b"abc", 6)
        with pytest.raises(GzipFormatError):
            gzip_unwrap(g[:-4])

    def test_zlib_adler_mismatch(self):
        z = bytearray(zlib_compress(b"payload data", 6))
        z[-1] ^= 0x01
        with pytest.raises(GzipFormatError, match="adler"):
            zlib_unwrap(bytes(z))

    def test_zlib_header_check(self):
        z = bytearray(zlib_compress(b"x", 6))
        z[1] ^= 0x01  # break the FCHECK
        with pytest.raises(GzipFormatError):
            zlib_unwrap(bytes(z))


class TestMultiMember:
    def test_split_members(self, fastq_small):
        parts = [fastq_small[:1000], fastq_small[1000:5000], fastq_small[5000:]]
        g = b"".join(stdlib_gzip.compress(p, 6) for p in parts)
        members = split_members(g)
        assert len(members) == 3
        assert members[0].header_start == 0
        assert members[-1].member_end == len(g)
        assert sum(m.isize for m in members) == len(fastq_small)

    def test_unwrap_multi_member(self, fastq_small):
        g = stdlib_gzip.compress(fastq_small[:700]) + gzip_compress(fastq_small[700:], 6)
        assert gzip_unwrap(g) == fastq_small

    def test_member_payload_fields(self, fastq_small):
        g = gzip_compress(fastq_small, 6)
        m = member_payload(g)
        assert m.payload_start == 10
        assert m.member_end == len(g)
        assert m.isize == len(fastq_small)
        assert m.crc == zlib.crc32(fastq_small)

    def test_stdlib_reads_concatenation_of_ours(self, dna_100k):
        g = gzip_compress(dna_100k[:9000], 6) + gzip_compress(dna_100k[9000:20000], 1)
        assert stdlib_gzip.decompress(g) == dna_100k[:20000]


class TestWrapHelpers:
    def test_gzip_wrap_xfl_hints(self):
        fast = gzip_wrap(deflate_compress(b"a", 1), b"a", level_hint=1)
        best = gzip_wrap(deflate_compress(b"a", 9), b"a", level_hint=9)
        assert fast[8] == 4 and best[8] == 2

    def test_zlib_wrap_header_valid(self):
        z = zlib_wrap(deflate_compress(b"a", 6), b"a")
        assert (z[0] * 256 + z[1]) % 31 == 0
