"""Canonical Huffman construction, decoding tables, package-merge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate.bitio import BitReader, BitWriter
from repro.deflate.constants import fixed_dist_lengths, fixed_litlen_lengths
from repro.deflate.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    canonical_codes,
    kraft_sum,
    limited_code_lengths,
)
from repro.errors import HuffmanError


class TestCanonicalCodes:
    def test_rfc1951_example(self):
        # RFC 1951 3.2.2 example: lengths (3,3,3,3,3,2,4,4) for A..H.
        lengths = [3, 3, 3, 3, 3, 2, 4, 4]
        codes = canonical_codes(lengths)
        assert codes == [0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]

    def test_zero_length_symbols_skipped(self):
        codes = canonical_codes([2, 0, 2, 0, 2, 2])
        assert codes[1] == 0 and codes[3] == 0
        used = [codes[i] for i in (0, 2, 4, 5)]
        assert len(set(used)) == 4

    def test_over_subscribed_raises(self):
        with pytest.raises(HuffmanError):
            canonical_codes([1, 1, 1])

    def test_empty(self):
        assert canonical_codes([]) == []
        assert canonical_codes([0, 0]) == [0, 0]

    def test_prefix_free(self):
        lengths = [4, 4, 4, 4, 3, 3, 3, 2]
        codes = canonical_codes(lengths)
        bits = [format(c, f"0{l}b") for c, l in zip(codes, lengths)]
        for i, a in enumerate(bits):
            for j, b in enumerate(bits):
                if i != j:
                    assert not b.startswith(a)


class TestKraftSum:
    def test_complete_code(self):
        total, max_bits = kraft_sum([2, 2, 2, 2])
        assert total == 1 << max_bits

    def test_incomplete_code(self):
        total, max_bits = kraft_sum([2, 2, 2])
        assert total < 1 << max_bits

    def test_empty(self):
        assert kraft_sum([0, 0]) == (0, 0)


class TestHuffmanDecoder:
    def test_round_trip_with_encoder(self):
        lengths = [3, 3, 3, 3, 3, 2, 4, 4]
        enc = HuffmanEncoder(lengths)
        dec = HuffmanDecoder(lengths)
        w = BitWriter()
        seq = [5, 0, 7, 6, 2, 5, 1, 3, 4]
        for s in seq:
            enc.write(w, s)
        r = BitReader(w.getvalue())
        assert [dec.decode(r) for _ in seq] == seq

    def test_fixed_litlen_complete(self):
        dec = HuffmanDecoder(fixed_litlen_lengths())
        assert dec.complete
        assert dec.max_bits == 9

    def test_fixed_dist_complete(self):
        dec = HuffmanDecoder(fixed_dist_lengths())
        assert dec.complete
        assert dec.max_bits == 5

    def test_incomplete_rejected_by_default(self):
        with pytest.raises(HuffmanError):
            HuffmanDecoder([1, 0, 0])  # one symbol, 1 bit: incomplete

    def test_incomplete_allowed_when_requested(self):
        dec = HuffmanDecoder([1, 0, 0], allow_incomplete=True)
        assert not dec.complete
        w = BitWriter()
        w.write(0, 1)
        assert dec.decode(BitReader(w.getvalue())) == 0

    def test_invalid_pattern_raises(self):
        dec = HuffmanDecoder([1, 0, 0], allow_incomplete=True)
        r = BitReader(bytes([0b1]))  # the unassigned 1-bit pattern
        with pytest.raises(HuffmanError):
            dec.decode(r)

    def test_over_subscribed_raises(self):
        with pytest.raises(HuffmanError):
            HuffmanDecoder([1, 1, 1])

    def test_no_symbols_raises(self):
        with pytest.raises(HuffmanError):
            HuffmanDecoder([0, 0, 0])

    def test_encoder_rejects_absent_symbol(self):
        enc = HuffmanEncoder([1, 1, 0])
        with pytest.raises(HuffmanError):
            enc.write(BitWriter(), 2)


class TestLimitedCodeLengths:
    def test_all_zero(self):
        assert limited_code_lengths([0, 0, 0], 15) == [0, 0, 0]

    def test_single_symbol_gets_length_one(self):
        assert limited_code_lengths([0, 42, 0], 15) == [0, 1, 0]

    def test_two_equal_symbols(self):
        assert limited_code_lengths([5, 5], 15) == [1, 1]

    def test_kraft_equality(self):
        freqs = [100, 50, 20, 10, 5, 2, 1, 1]
        lengths = limited_code_lengths(freqs, 15)
        total, max_bits = kraft_sum(lengths)
        assert total == 1 << max_bits  # complete code

    def test_respects_limit(self):
        # Fibonacci-ish frequencies force deep codes when unlimited.
        freqs = [1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610]
        for limit in (7, 9, 15):
            lengths = limited_code_lengths(freqs, limit)
            assert max(lengths) <= limit
            total, max_bits = kraft_sum(lengths)
            assert total == 1 << max_bits

    def test_optimality_vs_unlimited_huffman(self):
        # With a generous limit package-merge must equal Huffman cost.
        import heapq

        freqs = [37, 12, 5, 99, 1, 1, 8, 44, 23, 6]
        lengths = limited_code_lengths(freqs, 15)
        cost_pm = sum(f * l for f, l in zip(freqs, lengths))

        heap = [(f, i) for i, f in enumerate(freqs)]
        heapq.heapify(heap)
        cost_huff = 0
        while len(heap) > 1:
            a = heapq.heappop(heap)[0]
            b = heapq.heappop(heap)[0]
            cost_huff += a + b
            heapq.heappush(heap, (a + b, -1))
        assert cost_pm == cost_huff

    def test_too_many_symbols_for_limit(self):
        with pytest.raises(HuffmanError):
            limited_code_lengths([1] * 9, 3)  # 9 symbols need >3 bits

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=60),
        st.sampled_from([7, 15]),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_valid_complete_codes(self, freqs, limit):
        lengths = limited_code_lengths(freqs, limit)
        used = [l for l in lengths if l]
        n_used = sum(1 for f in freqs if f > 0)
        if n_used == 0:
            assert not used
            return
        assert max(used) <= limit
        if n_used == 1:
            assert used == [1]
            return
        total, max_bits = kraft_sum(lengths)
        assert total == 1 << max_bits

    @given(
        st.lists(st.integers(min_value=1, max_value=500), min_size=2, max_size=30),
        st.lists(st.integers(min_value=0, max_value=29), min_size=1, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_encode_decode_round_trip(self, freqs, raw_seq):
        lengths = limited_code_lengths(freqs, 15)
        enc = HuffmanEncoder(lengths)
        dec = HuffmanDecoder(lengths)
        seq = [s % len(freqs) for s in raw_seq]
        w = BitWriter()
        for s in seq:
            enc.write(w, s)
        r = BitReader(w.getvalue())
        assert [dec.decode(r) for _ in seq] == seq
