"""Inflate: decoding zlib-produced streams, block handling, strict mode."""

import zlib

import pytest

from repro.deflate import constants as C
from repro.deflate.bitio import BitWriter
from repro.deflate.inflate import inflate, inflate_bytes, read_block_header
from repro.deflate.bitio import BitReader
from repro.errors import (
    AsciiCheckError,
    BlockHeaderError,
    BlockSizeError,
    DeflateError,
)
from tests.conftest import zlib_raw


class TestDecodeZlibStreams:
    @pytest.mark.parametrize("level", [1, 4, 6, 9])
    def test_dna(self, level, dna_100k):
        raw = zlib_raw(dna_100k, level)
        assert inflate_bytes(raw) == dna_100k

    @pytest.mark.parametrize("level", [1, 6, 9])
    def test_fastq(self, level, fastq_small):
        raw = zlib_raw(fastq_small, level)
        assert inflate_bytes(raw) == fastq_small

    def test_binary_data(self):
        data = bytes(range(256)) * 300
        assert inflate_bytes(zlib_raw(data, 6)) == data

    def test_empty_input(self):
        assert inflate_bytes(zlib_raw(b"", 6)) == b""

    def test_single_byte(self):
        assert inflate_bytes(zlib_raw(b"x", 6)) == b"x"

    def test_level0_stored_blocks(self):
        data = b"stored-data" * 20000  # > 64 KiB, multiple stored blocks
        raw = zlib_raw(data, 0)
        result = inflate(raw)
        assert result.data == data
        assert all(b.btype == C.BTYPE_STORED for b in result.blocks)

    def test_incompressible_may_use_stored(self):
        import os

        data = os.urandom(100_000)
        assert inflate_bytes(zlib_raw(data, 6)) == data

    def test_fixed_block_stream(self):
        # zlib uses fixed blocks for tiny inputs at some levels; build
        # one explicitly with a Z_FIXED strategy.
        co = zlib.compressobj(6, zlib.DEFLATED, -15, 8, zlib.Z_FIXED)
        data = b"fixed huffman block content 123"
        raw = co.compress(data) + co.flush()
        result = inflate(raw)
        assert result.data == data
        assert result.blocks[0].btype == C.BTYPE_FIXED


class TestBlockAccounting:
    def test_block_bits_contiguous(self, fastq_medium):
        raw = zlib_raw(fastq_medium, 6)
        result = inflate(raw)
        assert len(result.blocks) > 3
        for prev, cur in zip(result.blocks, result.blocks[1:]):
            assert prev.end_bit == cur.start_bit
            assert prev.out_end == cur.out_start
        assert result.blocks[-1].bfinal
        assert result.final_seen

    def test_decode_from_block_boundary_with_window(self, fastq_medium):
        """Resuming mid-stream with the right context is exact."""
        raw = zlib_raw(fastq_medium, 6)
        full = inflate(raw)
        b = full.blocks[2]
        window = full.data[: b.out_start][-32768:]
        tail = inflate(raw, start_bit=b.start_bit, window=window)
        assert tail.data == full.data[b.out_start :]

    def test_max_blocks_limit(self, fastq_medium):
        raw = zlib_raw(fastq_medium, 6)
        result = inflate(raw, max_blocks=2)
        assert len(result.blocks) == 2
        assert not result.final_seen

    def test_max_output_limit(self, fastq_medium):
        raw = zlib_raw(fastq_medium, 6)
        result = inflate(raw, max_output=10)
        # Stops at the first block boundary past the limit.
        assert len(result.blocks) == 1

    def test_token_capture_expands_to_output(self, dna_100k):
        raw = zlib_raw(dna_100k, 6)
        result = inflate(raw, capture_tokens=True)
        stats = result.tokens.stats()
        assert stats.output_length == len(dna_100k)
        assert stats.num_matches > 0

    def test_window_property(self, fastq_medium):
        raw = zlib_raw(fastq_medium, 6)
        result = inflate(raw)
        assert result.window == fastq_medium[-32768:]


class TestCorruptStreams:
    def test_reserved_btype(self):
        w = BitWriter()
        w.write(0, 1)  # BFINAL=0
        w.write(3, 2)  # reserved
        with pytest.raises(BlockHeaderError):
            inflate(w.getvalue())

    def test_stored_len_nlen_mismatch(self):
        w = BitWriter()
        w.write(1, 1)
        w.write(C.BTYPE_STORED, 2)
        w.align_to_byte()
        w.write(5, 16)
        w.write(5, 16)  # should be ~5
        with pytest.raises(BlockHeaderError):
            inflate(w.getvalue())

    def test_truncated_stream_raises_or_stops(self, dna_100k):
        raw = zlib_raw(dna_100k, 6)
        with pytest.raises(DeflateError):
            inflate(raw[: len(raw) // 2], strict=True)

    def test_bit_flip_detected_or_differs(self, fastq_small):
        """Flipping a payload bit must never silently produce the same
        output (either an error or different bytes)."""
        raw = bytearray(zlib_raw(fastq_small, 6))
        raw[len(raw) // 3] ^= 0x10
        try:
            out = inflate_bytes(bytes(raw))
        except DeflateError:
            return
        assert out != fastq_small

    def test_hdist_too_large(self):
        w = BitWriter()
        w.write(0, 1)
        w.write(C.BTYPE_DYNAMIC, 2)
        w.write(0, 5)    # HLIT = 257
        w.write(31, 5)   # HDIST = 32 (> 30)
        w.write(0, 4)
        with pytest.raises(BlockHeaderError):
            read_block_header(BitReader(w.getvalue()))


class TestStrictMode:
    def test_rejects_final_block_as_candidate(self, fastq_small):
        raw = zlib_raw(fastq_small, 6)
        result = inflate(raw)
        final = result.blocks[-1]
        with pytest.raises(BlockHeaderError):
            inflate(raw, start_bit=final.start_bit, strict=True)

    def test_accepts_true_block_start(self, fastq_medium):
        raw = zlib_raw(fastq_medium, 6)
        full = inflate(raw)
        b = full.blocks[1]
        result = inflate(raw, start_bit=b.start_bit, strict=True, max_blocks=3)
        assert len(result.blocks) >= 1

    def test_ascii_check_rejects_binary(self):
        import os

        data = os.urandom(60_000)
        raw = zlib_raw(data, 6)
        result = inflate(raw)
        if len(result.blocks) < 2:
            pytest.skip("need multiple blocks")
        b = result.blocks[1] if not result.blocks[1].bfinal else result.blocks[0]
        with pytest.raises(DeflateError):
            inflate(raw, start_bit=b.start_bit, strict=True, max_blocks=1)

    def test_block_size_check(self):
        # A valid non-final block smaller than 1 KiB must be rejected
        # in strict mode.  Build: tiny dynamic block via zlib flush.
        co = zlib.compressobj(6, zlib.DEFLATED, -15)
        raw = co.compress(b"tiny ascii block") + co.flush(zlib.Z_FULL_FLUSH)
        raw += co.compress(b"rest") + co.flush()
        with pytest.raises((BlockSizeError, DeflateError)):
            inflate(raw, strict=True, max_blocks=1)

    def test_backref_into_assumed_context_allowed(self, fastq_medium):
        """Strict mode assumes a 32 KiB context exists: block 1 decodes
        even though its matches point before the start."""
        raw = zlib_raw(fastq_medium, 6)
        full = inflate(raw)
        b = full.blocks[1]
        result = inflate(raw, start_bit=b.start_bit, strict=True, max_blocks=1)
        assert b"?" in result.data or len(result.data) > 0

    def test_hit_final_probe_flag(self, fastq_medium):
        raw = zlib_raw(fastq_medium, 6)
        full = inflate(raw)
        # Start probing at the penultimate block: the confirmation run
        # decodes the genuine final block too and flags it.
        b = full.blocks[-2]
        result = inflate(raw, start_bit=b.start_bit, strict=True, max_blocks=10)
        assert result.hit_final_probe
        assert result.final_seen
        assert len(result.blocks) == 2
