"""Property-based interoperability: ours <-> zlib on adversarial inputs.

Hypothesis drives structured generators (repeats, runs, near-matches at
boundary distances/lengths) through both codec directions.
"""

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate.deflate import deflate_compress
from repro.deflate.inflate import inflate_bytes


def zlib_raw(data: bytes, level: int) -> bytes:
    co = zlib.compressobj(level, zlib.DEFLATED, -15)
    return co.compress(data) + co.flush()


# Structured inputs that stress LZ77 boundary conditions.
_repeats = st.builds(
    lambda unit, n: unit * n,
    st.binary(min_size=1, max_size=32),
    st.integers(min_value=1, max_value=300),
)
_runs = st.builds(
    lambda b, n: bytes([b]) * n,
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=1, max_value=70000),
)
_dna_like = st.builds(
    lambda seed, n: bytes(
        b"ACGT"[(seed + i * 2654435761) % 4] for i in range(n)
    ),
    st.integers(min_value=0, max_value=2**30),
    st.integers(min_value=0, max_value=2000),
)
_mixed = st.lists(
    st.one_of(st.binary(max_size=200), _repeats, _dna_like),
    max_size=6,
).map(b"".join)


class TestOursDecodesZlib:
    @given(_mixed, st.sampled_from([1, 4, 6, 9]))
    @settings(max_examples=120, deadline=None)
    def test_inflate_zlib_output(self, data, level):
        assert inflate_bytes(zlib_raw(data, level)) == data

    @given(_runs)
    @settings(max_examples=40, deadline=None)
    def test_long_runs(self, data):
        assert inflate_bytes(zlib_raw(data, 6)) == data


class TestZlibDecodesOurs:
    @given(_mixed, st.sampled_from([0, 1, 4, 6, 9]))
    @settings(max_examples=120, deadline=None)
    def test_zlib_inflates_our_output(self, data, level):
        assert zlib.decompress(deflate_compress(data, level), wbits=-15) == data

    @given(_runs)
    @settings(max_examples=30, deadline=None)
    def test_long_runs(self, data):
        assert zlib.decompress(deflate_compress(data, 6), wbits=-15) == data


class TestFullCircle:
    @given(_mixed)
    @settings(max_examples=80, deadline=None)
    def test_ours_to_ours(self, data):
        assert inflate_bytes(deflate_compress(data, 6)) == data

    @given(_mixed, st.sampled_from([1, 6, 9]), st.sampled_from([1, 6, 9]))
    @settings(max_examples=50, deadline=None)
    def test_recompress_cycle(self, data, l1, l2):
        """zlib(ours(zlib(data))) stays exact through level changes."""
        step1 = inflate_bytes(zlib_raw(data, l1))
        step2 = zlib.decompress(deflate_compress(step1, l2), wbits=-15)
        assert step2 == data
