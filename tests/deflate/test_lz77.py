"""LZ77 parser: correctness of the parse and fidelity of the strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import random_dna
from repro.deflate.lz77 import LEVEL_CONFIGS, MAX_DIST, TOO_FAR, Lz77Parser, parse_lz77
from repro.deflate.tokens import TokenStream


def expand(tokens: TokenStream) -> bytes:
    """Re-expand a token stream to bytes (reference LZ77 semantics)."""
    out = bytearray()
    for t in tokens:
        if t.is_literal:
            out.append(t.value)
        else:
            start = len(out) - t.offset
            assert start >= 0, "token references before stream start"
            for k in range(t.value):
                out.append(out[start + k])
    return bytes(out)


class TestParseCorrectness:
    @pytest.mark.parametrize("level", sorted(LEVEL_CONFIGS))
    def test_expand_reproduces_input_text(self, level, mixed_text):
        data = mixed_text[:20000]
        assert expand(parse_lz77(data, level)) == data

    @pytest.mark.parametrize("level", [1, 6, 9])
    def test_expand_reproduces_dna(self, level, dna_100k):
        data = dna_100k[:30000]
        assert expand(parse_lz77(data, level)) == data

    def test_empty_input(self):
        assert len(parse_lz77(b"", 6)) == 0

    def test_short_inputs(self):
        for n in range(1, 6):
            data = b"ab"[:1] * n
            tokens = parse_lz77(data, 6)
            assert expand(tokens) == data

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            Lz77Parser(b"x", level=0)
        with pytest.raises(ValueError):
            Lz77Parser(b"x", level=10)

    def test_invalid_min_match(self):
        with pytest.raises(ValueError):
            Lz77Parser(b"x", level=1, min_match=2)

    @given(st.binary(min_size=0, max_size=3000), st.sampled_from([1, 3, 4, 6, 9]))
    @settings(max_examples=60, deadline=None)
    def test_property_expand_round_trip(self, data, level):
        assert expand(parse_lz77(data, level)) == data


class TestMatchConstraints:
    @pytest.mark.parametrize("level", [1, 6, 9])
    def test_offsets_within_max_dist(self, level):
        data = (b"UNIQUEPREFIX" + random_dna(40000, seed=9) + b"UNIQUEPREFIX" + b"Z" * 10)
        tokens = parse_lz77(data, level)
        offsets = tokens.offsets()
        assert offsets.max(initial=0) <= MAX_DIST

    @pytest.mark.parametrize("level", [1, 6, 9])
    def test_lengths_within_bounds(self, level):
        data = b"A" * 5000
        tokens = parse_lz77(data, level)
        values = tokens.values()
        offsets = tokens.offsets()
        match_lengths = values[offsets > 0]
        assert match_lengths.min(initial=3) >= 3
        assert match_lengths.max(initial=3) <= 258
        assert expand(tokens) == data

    def test_run_length_encoded_as_overlapping_match(self):
        tokens = parse_lz77(b"A" * 100, 6)
        # One literal 'A' then an overlapping distance-1 match.
        assert tokens[0].is_literal
        assert any((not t.is_literal) and t.offset == 1 for t in tokens)

    def test_too_far_rule_lazy(self):
        # A 3-byte repeat placed > TOO_FAR back must not become a match
        # at lazy levels (zlib drops min-length far matches).
        filler = random_dna(TOO_FAR + 500, seed=5).replace(b"GCA", b"GCC")
        data = b"XQZ" + filler + b"XQZ" + b"\x00" * 4
        tokens = parse_lz77(data, 6)
        for t in tokens:
            if not t.is_literal:
                assert not (t.value == 3 and t.offset > TOO_FAR)
        assert expand(tokens) == data


class TestStrategies:
    def test_greedy_vs_lazy_config_split(self):
        for level in (1, 2, 3):
            assert not LEVEL_CONFIGS[level].lazy
        for level in range(4, 10):
            assert LEVEL_CONFIGS[level].lazy

    def test_lazy_emits_more_literals_on_dna(self):
        """The paper's core observation (Section V-B): non-greedy
        parsing produces literals on random DNA; greedy mostly doesn't."""
        data = random_dna(120_000, seed=17)
        greedy = parse_lz77(data, 1).stats()
        lazy = parse_lz77(data, 6).stats()
        # Skip the first window (both emit literals while history fills).
        assert lazy.num_literals > greedy.num_literals

    def test_lazy_literal_rate_near_model(self):
        """Steady-state literal rate on random DNA should be in the
        ballpark of the Section V-C model (~4%)."""
        from repro.models import literal_rate

        data = random_dna(200_000, seed=23)
        tokens = parse_lz77(data, 6)
        # Steady state: ignore the first 64 KiB of output.
        out_pos = 0
        lits = 0
        total = 0
        for t in tokens:
            size = t.length
            if out_pos > 65536:
                total += size
                if t.is_literal:
                    lits += 1
            out_pos += size
        measured = lits / total
        model = literal_rate()
        assert 0.3 * model < measured < 3.0 * model

    def test_higher_level_compresses_harder(self):
        data = random_dna(60_000, seed=31) * 2
        s1 = parse_lz77(data, 1).stats()
        s9 = parse_lz77(data, 9).stats()
        assert s9.mean_length >= s1.mean_length

    def test_weak_persona_min_match(self):
        """min_match=8 (igzip-style) must emit no short matches and far
        more literals on DNA — the 'lowest stratum' persona."""
        data = random_dna(60_000, seed=41)
        weak = parse_lz77(data, 1, min_match=8)
        values = weak.values()
        offsets = weak.offsets()
        match_lengths = values[offsets > 0]
        if len(match_lengths):
            assert match_lengths.min() >= 8
        strong = parse_lz77(data, 1)
        assert weak.stats().num_literals > 5 * max(1, strong.stats().num_literals)
        assert expand(weak) == data
