"""Unit tests of the two-stage vectorized decode kernel (PR 9).

The differential fuzz suite proves whole-stream equivalence; these
tests pin the pieces in isolation: the LZ77 replay (tiled pointer
jumping, overlap folding, window seeding, marker transparency), the
per-block token decoder's guard rails (``max_out``, int32 bounds), and
the kernel-selection precedence of :mod:`repro.perf.kernels`.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.core import marker
from repro.deflate.bitio import BitReader
from repro.deflate.inflate import inflate, read_block_header
from repro.perf import npkernel
from repro.perf.kernels import (
    KernelSpec,
    MIN_AUTO_NUMPY_BYTES,
    resolve_kernel,
)
from repro.units import BitOffset


def _cols(*tokens):
    """(offset, value) pairs -> int32 column arrays."""
    offs = np.asarray([t[0] for t in tokens], dtype=np.int32)
    vals = np.asarray([t[1] for t in tokens], dtype=np.int32)
    return offs, vals


def _pure_replay(tokens, window=b""):
    out = bytearray(window)
    for off, val in tokens:
        if off == 0:
            out.append(val)
        else:
            for _ in range(val):
                out.append(out[-off])
    return bytes(out[len(window):])


# ---------------------------------------------------------------------------
# replay_bytes
# ---------------------------------------------------------------------------


def test_replay_literals_only():
    toks = [(0, b) for b in b"ACGTACGT"]
    assert npkernel.replay_bytes(*_cols(*toks), b"") == b"ACGTACGT"


def test_replay_empty():
    offs = np.empty(0, dtype=np.int32)
    assert npkernel.replay_bytes(offs, offs, b"") == b""


def test_replay_simple_match():
    toks = [(0, ord("A")), (0, ord("B")), (0, ord("C")), (3, 3)]
    assert npkernel.replay_bytes(*_cols(*toks), b"") == b"ABCABC"


def test_replay_overlapping_match_rle():
    # distance 1, length 7: classic RLE — the overlap mod-fold path.
    toks = [(0, ord("X")), (1, 7)]
    assert npkernel.replay_bytes(*_cols(*toks), b"") == b"X" * 8


def test_replay_overlap_distance_less_than_length():
    toks = [(0, ord("A")), (0, ord("B")), (0, ord("C")), (2, 9)]
    assert npkernel.replay_bytes(*_cols(*toks), b"") == _pure_replay(toks)


def test_replay_chained_matches():
    # Later matches copy from earlier matches' output: the pointer
    # chains the tiled jump must resolve transitively.
    toks = [(0, ord("A")), (0, ord("B")), (2, 2), (4, 4), (8, 8), (3, 5)]
    assert npkernel.replay_bytes(*_cols(*toks), b"") == _pure_replay(toks)


def test_replay_from_seeded_window():
    window = b"HELLOWORLD"
    toks = [(10, 5), (0, ord("!")), (6, 4)]
    assert npkernel.replay_bytes(*_cols(*toks), window) == _pure_replay(
        toks, window
    )


def test_replay_randomized_against_pure():
    rng = np.random.default_rng(0xD1FF)
    window = bytes(rng.integers(0, 256, 512, dtype=np.uint8))
    toks = []
    produced = len(window)
    for _ in range(2_000):
        if produced == 0 or rng.random() < 0.55:
            toks.append((0, int(rng.integers(0, 256))))
            produced += 1
        else:
            off = int(rng.integers(1, min(produced, 400) + 1))
            length = int(rng.integers(3, 259))
            toks.append((off, length))
            produced += length
    assert npkernel.replay_bytes(*_cols(*toks), window) == _pure_replay(
        toks, window
    )


def test_replay_backref_before_window_raises_fallback():
    toks = [(0, ord("A")), (5, 3)]  # distance 5 with 2 bytes of history
    with pytest.raises(npkernel.Fallback):
        npkernel.replay_bytes(*_cols(*toks), b"")


def test_replay_int32_bound_raises_fallback():
    # len(offs) * 258 + wlen must stay below 2**31; build a columnar
    # shape that trips the pre-check without allocating the output.
    n = (1 << 31) // 258 + 1
    offs = np.zeros(n, dtype=np.int32)
    with pytest.raises(npkernel.Fallback):
        npkernel.replay_bytes(offs, offs, b"")


# ---------------------------------------------------------------------------
# replay_symbols (marker domain)
# ---------------------------------------------------------------------------


def test_replay_symbols_markers_survive_copies():
    # A match that reaches into the undetermined window must copy the
    # marker symbols (values >= MARKER_BASE) through untouched.
    win = np.asarray(marker.undetermined_window(), dtype=np.int32)
    toks = [(3, 3), (0, ord("G")), (2, 2)]
    out = npkernel.replay_symbols(*_cols(*toks), win)
    expect = [
        int(win[-3]), int(win[-2]), int(win[-1]),
        ord("G"),
        int(win[-1]), ord("G"),
    ]
    assert out.dtype == np.int32
    assert out.tolist() == expect
    assert all(s >= marker.MARKER_BASE for s in expect[:3])


def test_replay_symbols_no_byte_narrowing():
    win = np.asarray(marker.undetermined_window(), dtype=np.int32)
    out = npkernel.replay_symbols(*_cols((1, 258)), win)
    assert out.dtype == np.int32
    assert (out == win[-1]).all()


# ---------------------------------------------------------------------------
# decode_block
# ---------------------------------------------------------------------------


def _first_block(payload):
    reader = BitReader(payload, BitOffset(0))
    header = read_block_header(reader)
    assert header.btype != 0
    return reader.tell_bits(), header


def test_decode_block_tokens_match_pure_capture():
    rng = np.random.default_rng(7)
    text = bytes(rng.choice(np.frombuffer(b"ACGT", np.uint8), 40_000))
    co = zlib.compressobj(6, zlib.DEFLATED, -15)
    payload = co.compress(text) + co.flush()

    h_bit, header = _first_block(payload)
    kern = npkernel.StreamKernel(payload)
    offs, vals, _fp, end_bit = kern.decode_block(h_bit, header.litlen, header.dist)

    ref = inflate(payload, capture_tokens=True, max_blocks=1, kernel="pure")
    assert np.array_equal(offs, ref.tokens.offsets())
    assert np.array_equal(vals, ref.tokens.values())
    assert end_bit == ref.blocks[0].end_bit
    assert offs.dtype == np.int32 and vals.dtype == np.int32


def test_decode_block_max_out_guard():
    rng = np.random.default_rng(8)
    text = bytes(rng.choice(np.frombuffer(b"ACGT", np.uint8), 200_000))
    co = zlib.compressobj(9, zlib.DEFLATED, -15)
    payload = co.compress(text) + co.flush()
    h_bit, header = _first_block(payload)
    kern = npkernel.StreamKernel(payload)
    with pytest.raises(npkernel.Fallback):
        kern.decode_block(h_bit, header.litlen, header.dist, max_out=100)


def test_decode_block_huge_max_out_disabled():
    rng = np.random.default_rng(9)
    text = bytes(rng.choice(np.frombuffer(b"ACGT", np.uint8), 20_000))
    co = zlib.compressobj(6, zlib.DEFLATED, -15)
    payload = co.compress(text) + co.flush()
    h_bit, header = _first_block(payload)
    kern = npkernel.StreamKernel(payload)
    offs, vals, _fp, _end = kern.decode_block(
        h_bit, header.litlen, header.dist, max_out=1 << 62
    )
    total = int(np.where(offs > 0, vals, 1).sum())
    assert total == 20_000


# ---------------------------------------------------------------------------
# kernel selection
# ---------------------------------------------------------------------------


def test_resolve_explicit_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    spec = resolve_kernel("pure")
    assert spec.name == "pure" and spec.source == "arg"
    assert not spec.use_vectorized(1 << 30)


def test_resolve_env_selection(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "pure")
    spec = resolve_kernel(None)
    assert spec.name == "pure" and spec.source == "env"
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    spec = resolve_kernel(None)
    assert spec.name == "numpy" and spec.source == "env"
    # Env selection is explicit: no size gate.
    assert spec.use_vectorized(16)


def test_resolve_auto_size_gate(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    spec = resolve_kernel(None)
    assert spec.source == "auto"
    if spec.vectorized:
        assert not spec.use_vectorized(MIN_AUTO_NUMPY_BYTES - 1)
        assert spec.use_vectorized(MIN_AUTO_NUMPY_BYTES)


def test_resolve_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown decode kernel"):
        resolve_kernel("simd")


def test_resolve_spec_passthrough():
    spec = KernelSpec("pure", vectorized=False, source="arg")
    assert resolve_kernel(spec) is spec


def test_explicit_numpy_honored_on_tiny_stream():
    # The fuzz suite relies on this: a 100-byte stream still runs the
    # vectorized path when asked explicitly.
    payload = zlib.compress(b"ACGT" * 25, 6)[2:-4]
    res = inflate(payload, kernel="numpy")
    assert res.data == b"ACGT" * 25
