"""Exhaustive block-boundary resumption sweep.

For each compression level, decoding from *every* block boundary with
the correct window must equal the corresponding suffix of a full
decode — the invariant both random access (with resolved context) and
the checkpoint index rely on.
"""

import pytest

from repro.deflate.inflate import inflate
from tests.conftest import zlib_raw


@pytest.mark.parametrize("level", [1, 6, 9])
def test_resume_at_every_block_boundary(level, fastq_medium):
    raw = zlib_raw(fastq_medium, level)
    full = inflate(raw)
    if len(full.blocks) < 3:
        pytest.skip("too few blocks at this level")
    for b in full.blocks[1:]:
        window = full.data[: b.out_start][-32768:]
        tail = inflate(raw, start_bit=b.start_bit, window=window)
        assert tail.data == full.data[b.out_start :], (
            f"level {level}, resume at block bit {b.start_bit}"
        )
        assert tail.end_bit == full.end_bit


@pytest.mark.parametrize("level", [1, 6])
def test_marker_resume_equals_byte_resume(level, fastq_medium):
    """Marker decode with a fully known window must equal the byte
    decoder at every boundary (same machinery, different domain)."""
    from repro.core.marker import count_markers, to_bytes
    from repro.core.marker_inflate import marker_inflate

    raw = zlib_raw(fastq_medium, level)
    full = inflate(raw)
    for b in full.blocks[1::2]:  # every other boundary, for runtime
        window = full.data[: b.out_start][-32768:]
        res = marker_inflate(raw, start_bit=b.start_bit, window=window)
        assert count_markers(res.symbols) == 0
        assert to_bytes(res.symbols) == full.data[b.out_start :]
