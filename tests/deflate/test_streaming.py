"""Incremental compressor/decompressor objects and flush semantics."""

import random
import zlib

import pytest

from repro.deflate.streaming import (
    FINISH,
    FULL_FLUSH,
    SYNC_FLUSH,
    DeflateCompressor,
    InflateDecompressor,
)
from repro.errors import ReproError


class TestCompressor:
    def test_single_finish(self, fastq_small):
        co = DeflateCompressor(6)
        co.compress(fastq_small)
        out = co.flush(FINISH)
        assert zlib.decompress(out, wbits=-15) == fastq_small
        assert co.finished

    def test_sync_flush_byte_aligns(self, fastq_small):
        co = DeflateCompressor(6)
        co.compress(fastq_small[:1000])
        frag = co.flush(SYNC_FLUSH)
        # Z_SYNC_FLUSH ends with the empty stored block 00 00 FF FF.
        assert frag.endswith(b"\x00\x00\xff\xff")

    def test_multi_flush_stream_valid(self, fastq_small):
        co = DeflateCompressor(6)
        out = bytearray()
        step = len(fastq_small) // 5
        for i in range(0, len(fastq_small), step):
            co.compress(fastq_small[i : i + step])
            out += co.flush(SYNC_FLUSH)
        out += co.flush(FINISH)
        assert zlib.decompress(bytes(out), wbits=-15) == fastq_small

    def test_history_kept_across_sync_flush(self):
        """Matches across a SYNC_FLUSH boundary still work.

        Random DNA is incompressible on its own, so the second copy
        compresses well only if the first survives as history."""
        from repro.data import random_dna

        unit = random_dna(5000, seed=77)
        co = DeflateCompressor(6)
        co.compress(unit)
        a = co.flush(SYNC_FLUSH)
        co.compress(unit)  # should match into retained history
        b = co.flush(FINISH)
        assert len(b) < len(a) / 3
        assert zlib.decompress(a + b, wbits=-15) == unit + unit

    def test_full_flush_clears_history(self):
        from repro.data import random_dna

        unit = random_dna(5000, seed=78)
        co = DeflateCompressor(6)
        co.compress(unit)
        a = co.flush(FULL_FLUSH)
        co.compress(unit)
        b = co.flush(FINISH)
        # Without history the second unit compresses like the first.
        assert len(b) > len(a) * 0.7
        assert zlib.decompress(a + b, wbits=-15) == unit + unit

    def test_full_flush_point_is_restartable(self, fastq_small):
        """A decoder can start at a FULL_FLUSH boundary with an empty
        window — the property blocked formats rely on."""
        from repro.deflate.inflate import inflate

        co = DeflateCompressor(6)
        co.compress(fastq_small[:4000])
        a = co.flush(FULL_FLUSH)
        co.compress(fastq_small[4000:8000])
        b = co.flush(FINISH)
        tail = inflate(a + b, start_bit=8 * len(a))
        assert tail.data == fastq_small[4000:8000]

    def test_finished_rejects_more_input(self):
        co = DeflateCompressor(6)
        co.flush(FINISH)
        with pytest.raises(ReproError):
            co.compress(b"more")
        with pytest.raises(ReproError):
            co.flush(FINISH)

    def test_invalid_mode_and_level(self):
        with pytest.raises(ValueError):
            DeflateCompressor(0)
        co = DeflateCompressor(6)
        with pytest.raises(ValueError):
            co.flush("noflush")

    def test_empty_finish(self):
        out = DeflateCompressor(6).flush(FINISH)
        assert zlib.decompress(out, wbits=-15) == b""


class TestDecompressor:
    def _compress(self, data: bytes) -> bytes:
        co = zlib.compressobj(6, zlib.DEFLATED, -15)
        return co.compress(data) + co.flush()

    def test_one_shot(self, fastq_small):
        dec = InflateDecompressor()
        out = dec.decompress(self._compress(fastq_small))
        out += dec.finish()
        assert out == fastq_small

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_feed_sizes(self, seed, fastq_small):
        raw = self._compress(fastq_small)
        rng = random.Random(seed)
        dec = InflateDecompressor()
        got = bytearray()
        pos = 0
        while pos < len(raw):
            step = rng.randint(1, 9000)
            got += dec.decompress(raw[pos : pos + step])
            pos += step
        got += dec.finish()
        assert bytes(got) == fastq_small

    def test_byte_at_a_time(self):
        data = b"tiny payload for slow feeding" * 30
        raw = self._compress(data)
        dec = InflateDecompressor()
        got = bytearray()
        for i in range(len(raw)):
            got += dec.decompress(raw[i : i + 1])
        got += dec.finish()
        assert bytes(got) == data

    def test_truncated_stream_detected(self, fastq_small):
        raw = self._compress(fastq_small)
        dec = InflateDecompressor()
        dec.decompress(raw[: len(raw) // 2])
        with pytest.raises(ReproError):
            dec.finish()

    def test_data_after_final_block_rejected(self):
        raw = self._compress(b"done")
        dec = InflateDecompressor()
        dec.decompress(raw)
        assert dec.finished
        with pytest.raises(ReproError):
            dec.decompress(b"trailing garbage")

    def test_round_trip_with_our_compressor(self, fastq_small):
        co = DeflateCompressor(6)
        co.compress(fastq_small)
        raw = co.flush(FINISH)
        dec = InflateDecompressor()
        out = dec.decompress(raw) + dec.finish()
        assert out == fastq_small
