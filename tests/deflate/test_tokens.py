"""Token stream container and statistics."""

import numpy as np
import pytest

from repro.deflate.tokens import Token, TokenStream


class TestToken:
    def test_literal_classification(self):
        t = Token.literal(65)
        assert t.is_literal
        assert t.length == 1
        assert t.value == 65

    def test_match_classification(self):
        t = Token.match(100, 42)
        assert not t.is_literal
        assert t.length == 42
        assert t.offset == 100


class TestTokenStream:
    def test_append_and_iterate(self):
        ts = TokenStream()
        ts.add_literal(ord("A"))
        ts.add_match(500, 10)
        ts.add_literal(ord("C"))
        tokens = list(ts)
        assert len(ts) == 3
        assert tokens[0] == Token(0, ord("A"))
        assert tokens[1] == Token(500, 10)
        assert ts[2].is_literal

    def test_columnar_views(self):
        ts = TokenStream()
        ts.add_match(7, 3)
        ts.add_literal(1)
        assert ts.offsets().tolist() == [7, 0]
        assert ts.values().tolist() == [3, 1]
        assert ts.offsets().dtype == np.int32

    def test_empty_stats(self):
        stats = TokenStream().stats()
        assert stats.num_literals == 0
        assert stats.num_matches == 0
        assert stats.mean_offset == 0.0
        assert stats.mean_length == 0.0
        assert stats.literal_fraction == 0.0

    def test_stats_mixed(self):
        ts = TokenStream()
        for _ in range(4):
            ts.add_literal(65)
        ts.add_match(1000, 10)
        ts.add_match(3000, 30)
        stats = ts.stats()
        assert stats.num_literals == 4
        assert stats.num_matches == 2
        assert stats.mean_offset == 2000.0
        assert stats.mean_length == 20.0
        assert stats.output_length == 44
        assert stats.literal_fraction == pytest.approx(4 / 44)

    def test_stats_all_literals(self):
        ts = TokenStream()
        for b in b"hello":
            ts.add_literal(b)
        stats = ts.stats()
        assert stats.literal_fraction == 1.0
        assert stats.output_length == 5

    def test_add_columnar_interleaves_with_scalar(self):
        ts = TokenStream()
        ts.add_literal(65)
        ts.add_columnar(
            np.asarray([0, 9], dtype=np.int32),
            np.asarray([66, 4], dtype=np.int32),
        )
        ts.add_match(2, 5)
        assert len(ts) == 4
        assert ts.offsets().tolist() == [0, 0, 9, 2]
        assert ts.values().tolist() == [65, 66, 4, 5]
        assert [t.is_literal for t in ts] == [True, True, False, False]

    def test_add_columnar_misaligned_raises(self):
        ts = TokenStream()
        with pytest.raises(ValueError, match="row-aligned"):
            ts.add_columnar(
                np.zeros(3, dtype=np.int32), np.zeros(2, dtype=np.int32)
            )

    def test_add_columnar_empty_is_noop(self):
        ts = TokenStream()
        empty = np.empty(0, dtype=np.int32)
        ts.add_columnar(empty, empty)
        assert len(ts) == 0

    def test_lists_view_matches_columns(self):
        ts = TokenStream()
        ts.add_columnar(
            np.asarray([0, 7, 0], dtype=np.int32),
            np.asarray([1, 3, 2], dtype=np.int32),
        )
        offs, vals = ts.lists()
        assert offs == [0, 7, 0] and vals == [1, 3, 2]
        assert ts.lists() is not None
        # Memoized view invalidates on append.
        ts.add_literal(9)
        offs2, vals2 = ts.lists()
        assert offs2 == [0, 7, 0, 0] and vals2 == [1, 3, 2, 9]

    def test_stats_from_columnar(self):
        ts = TokenStream()
        ts.add_columnar(
            np.asarray([0, 0, 1000, 3000], dtype=np.int32),
            np.asarray([65, 65, 10, 30], dtype=np.int32),
        )
        stats = ts.stats()
        assert stats.num_literals == 2
        assert stats.num_matches == 2
        assert stats.mean_offset == 2000.0
        assert stats.output_length == 42
