"""Token stream container and statistics."""

import numpy as np
import pytest

from repro.deflate.tokens import Token, TokenStream


class TestToken:
    def test_literal_classification(self):
        t = Token.literal(65)
        assert t.is_literal
        assert t.length == 1
        assert t.value == 65

    def test_match_classification(self):
        t = Token.match(100, 42)
        assert not t.is_literal
        assert t.length == 42
        assert t.offset == 100


class TestTokenStream:
    def test_append_and_iterate(self):
        ts = TokenStream()
        ts.add_literal(ord("A"))
        ts.add_match(500, 10)
        ts.add_literal(ord("C"))
        tokens = list(ts)
        assert len(ts) == 3
        assert tokens[0] == Token(0, ord("A"))
        assert tokens[1] == Token(500, 10)
        assert ts[2].is_literal

    def test_columnar_views(self):
        ts = TokenStream()
        ts.add_match(7, 3)
        ts.add_literal(1)
        assert ts.offsets().tolist() == [7, 0]
        assert ts.values().tolist() == [3, 1]
        assert ts.offsets().dtype == np.int32

    def test_empty_stats(self):
        stats = TokenStream().stats()
        assert stats.num_literals == 0
        assert stats.num_matches == 0
        assert stats.mean_offset == 0.0
        assert stats.mean_length == 0.0
        assert stats.literal_fraction == 0.0

    def test_stats_mixed(self):
        ts = TokenStream()
        for _ in range(4):
            ts.add_literal(65)
        ts.add_match(1000, 10)
        ts.add_match(3000, 30)
        stats = ts.stats()
        assert stats.num_literals == 4
        assert stats.num_matches == 2
        assert stats.mean_offset == 2000.0
        assert stats.mean_length == 20.0
        assert stats.output_length == 44
        assert stats.literal_fraction == pytest.approx(4 / 44)

    def test_stats_all_literals(self):
        ts = TokenStream()
        for b in b"hello":
            ts.add_literal(b)
        stats = ts.stats()
        assert stats.literal_fraction == 1.0
        assert stats.output_length == 5
