"""Unit tests for the project call graph (:mod:`repro.lint.callgraph`).

Everything runs over a small synthetic package built in memory — the
resolution rules (import tables, attribute chains, self/cls methods,
the unique-method fallback with its common-name stoplist, one-level
local aliases) and the structures derived from the graph (SCC order,
reachability, executor submission sites) are exercised without
touching the real source tree, so these tests stay stable as the repo
grows.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.lint.callgraph import (
    MODULE_UNIT,
    Project,
    strongly_connected_components,
)
from repro.lint.module import ModuleInfo

pytestmark = pytest.mark.lint


def make_module(name: str, source: str) -> ModuleInfo:
    relpath = name.replace(".", "/") + ".py"
    return ModuleInfo(
        path=Path("/syn/" + relpath),
        relpath=relpath,
        name=name,
        source=source,
        tree=ast.parse(source),
        pragmas={},
    )


def project(**sources: str) -> Project:
    return Project(
        make_module(name.replace("__", "."), src)
        for name, src in sources.items()
    )


def edge_set(proj: Project) -> set[tuple[str, str]]:
    graph = proj.call_graph()
    return {
        (site.caller, site.callee)
        for sites in graph.edges.values()
        for site in sites
    }


# ---------------------------------------------------------------------------
# function indexing
# ---------------------------------------------------------------------------


class TestIndexing:
    def test_functions_methods_and_nested(self):
        proj = project(pkg__a="""
def top():
    def inner():
        pass
    return inner

class Worker:
    def run(self):
        pass
""")
        assert set(proj.functions) == {
            "pkg.a.top", "pkg.a.top.inner", "pkg.a.Worker.run",
        }
        assert proj.functions["pkg.a.Worker.run"].is_method
        assert proj.functions["pkg.a.top.inner"].is_nested

    def test_closure_detection(self):
        proj = project(pkg__a="""
def outer(items):
    total = []
    def closes():
        total.append(1)
    def clean(x):
        return x + 1
    return closes, clean
""")
        assert proj.functions["pkg.a.outer.closes"].is_closure
        assert proj.functions["pkg.a.outer.closes"].closure_names == {"total"}
        assert not proj.functions["pkg.a.outer.clean"].is_closure

    def test_params_strip_self_and_cls(self):
        proj = project(pkg__a="""
class C:
    def m(self, n):
        pass
    @classmethod
    def k(cls, n):
        pass
""")
        assert [a.arg for a in proj.functions["pkg.a.C.m"].params()] == ["n"]
        assert [a.arg for a in proj.functions["pkg.a.C.k"].params()] == ["n"]

    def test_iter_units_includes_module_top_level(self):
        proj = project(pkg__a="def f():\n    pass\nX = f()\n")
        names = {q for q, _, _, _ in proj.iter_units()}
        assert f"pkg.a.{MODULE_UNIT}" in names
        assert "pkg.a.f" in names


# ---------------------------------------------------------------------------
# call resolution
# ---------------------------------------------------------------------------


class TestResolution:
    def test_same_module_name_call(self):
        proj = project(pkg__a="""
def helper():
    pass

def caller():
    helper()
""")
        assert ("pkg.a.caller", "pkg.a.helper") in edge_set(proj)

    def test_from_import(self):
        proj = project(
            pkg__a="def helper():\n    pass\n",
            pkg__b="from pkg.a import helper\n\ndef caller():\n    helper()\n",
        )
        assert ("pkg.b.caller", "pkg.a.helper") in edge_set(proj)

    def test_from_import_with_alias(self):
        proj = project(
            pkg__a="def helper():\n    pass\n",
            pkg__b="from pkg.a import helper as h\n\ndef caller():\n    h()\n",
        )
        assert ("pkg.b.caller", "pkg.a.helper") in edge_set(proj)

    def test_module_attribute_chain(self):
        proj = project(
            pkg__a="def helper():\n    pass\n",
            pkg__b="import pkg.a\n\ndef caller():\n    pkg.a.helper()\n",
        )
        assert ("pkg.b.caller", "pkg.a.helper") in edge_set(proj)

    def test_import_as_attribute_chain(self):
        proj = project(
            pkg__a="def helper():\n    pass\n",
            pkg__b="import pkg.a as mod\n\ndef caller():\n    mod.helper()\n",
        )
        assert ("pkg.b.caller", "pkg.a.helper") in edge_set(proj)

    def test_relative_import(self):
        proj = project(
            pkg__a="def helper():\n    pass\n",
            pkg__b="from .a import helper\n\ndef caller():\n    helper()\n",
        )
        assert ("pkg.b.caller", "pkg.a.helper") in edge_set(proj)

    def test_self_method_call(self):
        proj = project(pkg__a="""
class C:
    def step(self):
        pass
    def run(self):
        self.step()
""")
        assert ("pkg.a.C.run", "pkg.a.C.step") in edge_set(proj)

    def test_unique_method_fallback(self):
        proj = project(
            pkg__a="""
class Decoder:
    def decode_symbol(self):
        pass
""",
            pkg__b="""
def drive(dec):
    dec.decode_symbol()
""",
        )
        assert ("pkg.b.drive", "pkg.a.Decoder.decode_symbol") in edge_set(proj)

    def test_common_method_names_never_fallback(self):
        # A unique project `def read` must not swallow `fh.read()`.
        proj = project(
            pkg__a="""
class Reader:
    def read(self):
        pass
""",
            pkg__b="""
def drive(fh):
    fh.read()
""",
        )
        assert ("pkg.b.drive", "pkg.a.Reader.read") not in edge_set(proj)

    def test_ambiguous_method_stays_unresolved(self):
        proj = project(
            pkg__a="class A:\n    def decode_symbol(self):\n        pass\n",
            pkg__b="class B:\n    def decode_symbol(self):\n        pass\n",
            pkg__c="def drive(x):\n    x.decode_symbol()\n",
        )
        callees = {c for _, c in edge_set(proj)}
        assert "pkg.a.A.decode_symbol" not in callees
        assert "pkg.b.B.decode_symbol" not in callees

    def test_local_alias_one_level(self):
        proj = project(pkg__a="""
def worker():
    pass

def caller():
    fn = worker
    fn()
""")
        assert ("pkg.a.caller", "pkg.a.worker") in edge_set(proj)


# ---------------------------------------------------------------------------
# submission sites
# ---------------------------------------------------------------------------


class TestSubmissions:
    def test_executor_map_collects_site_and_edge(self):
        proj = project(pkg__a="""
def work(item):
    return item

def run(executor, items):
    return executor.map_outcomes(work, items)
""")
        graph = proj.call_graph()
        (site,) = graph.submissions
        assert site.caller == "pkg.a.run"
        assert site.method == "map_outcomes"
        assert site.callee == "pkg.a.work"
        assert ("pkg.a.run", "pkg.a.work") in edge_set(proj)

    def test_supervised_map_outcomes_fn_position(self):
        proj = project(pkg__a="""
def work(item):
    return item

def run(executor, items, policy):
    return supervised_map_outcomes(executor, work, items, policy)
""")
        (site,) = proj.call_graph().submissions
        assert site.callee == "pkg.a.work"

    def test_aliased_lambda_submission_resolves_expr(self):
        proj = project(pkg__a="""
def run(executor, items):
    fn = lambda item: item * 2
    return executor.map(fn, items)
""")
        (site,) = proj.call_graph().submissions
        assert isinstance(site.resolved_expr, ast.Lambda)

    def test_non_executor_receiver_ignored(self):
        proj = project(pkg__a="""
def run(values, items):
    return values.map(str, items)
""")
        assert proj.call_graph().submissions == []


# ---------------------------------------------------------------------------
# graph structure: SCCs + reachability
# ---------------------------------------------------------------------------


class TestStructure:
    def test_scc_order_bottom_up(self):
        proj = project(pkg__a="""
def leaf():
    pass

def mid():
    leaf()

def top():
    mid()
""")
        order = proj.scc_order()
        pos = {q: i for i, scc in enumerate(order) for q in scc}
        assert pos["pkg.a.leaf"] < pos["pkg.a.mid"] < pos["pkg.a.top"]

    def test_mutual_recursion_shares_scc(self):
        proj = project(pkg__a="""
def even(n):
    return n == 0 or odd(n - 1)

def odd(n):
    return n != 0 and even(n - 1)
""")
        sccs = [set(s) for s in proj.scc_order()]
        assert {"pkg.a.even", "pkg.a.odd"} in sccs

    def test_reachable_from(self):
        proj = project(pkg__a="""
def a():
    b()

def b():
    c()

def c():
    pass

def unrelated():
    pass
""")
        reached = set(proj.call_graph().reachable_from("pkg.a.a"))
        assert {"pkg.a.a", "pkg.a.b", "pkg.a.c"} <= reached
        assert "pkg.a.unrelated" not in reached

    def test_tarjan_handles_deep_chains_iteratively(self):
        # 2000-deep chain: a recursive Tarjan would blow the stack.
        n = 2000
        nodes = [f"f{i}" for i in range(n)]
        succs = {f"f{i}": [f"f{i + 1}"] for i in range(n - 1)}
        order = strongly_connected_components(nodes, succs)
        assert len(order) == n
        assert order[0] == [f"f{n - 1}"]  # callees first

    def test_source_hash_changes_with_content(self):
        p1 = project(pkg__a="def f():\n    pass\n")
        p2 = project(pkg__a="def f():\n    return 1\n")
        p3 = project(pkg__a="def f():\n    pass\n")
        assert p1.source_hash() != p2.source_hash()
        assert p1.source_hash() == p3.source_hash()
