"""Unit tests for the CFG builder and the forward dataflow solver.

These exercise the engine underneath REP009–REP011 directly, on shapes
the fixture tests only cover indirectly: loop back-edges, dead code
after ``return``, conservative ``try`` edges, and fixpoint convergence
of a simple constant-ish analysis.
"""

from __future__ import annotations

import ast

import pytest

from repro.lint.cfg import build_cfg, stmt_expressions
from repro.lint.dataflow import ForwardAnalysis, solve

pytestmark = pytest.mark.lint


def cfg_of(src: str):
    return build_cfg(ast.parse(src).body)


def edges(cfg):
    return {
        (src.bid, dst, label)
        for src in cfg
        for dst, label in src.succs
    }


class TestCFGShape:
    def test_straight_line_is_one_block(self):
        cfg = cfg_of("a = 1\nb = a\nc = b\n")
        entry = cfg.block(cfg.entry)
        assert len(entry.stmts) == 3
        assert entry.succs == [(cfg.exit, "")]

    def test_if_produces_labeled_edges_and_join(self):
        cfg = cfg_of("if cond:\n    x = 1\ny = 2\n")
        entry = cfg.block(cfg.entry)
        assert isinstance(entry.test, ast.Name)
        labels = {label for _, label in entry.succs}
        assert labels == {"true", "false"}

    def test_while_has_back_edge(self):
        cfg = cfg_of("while cond:\n    x = 1\n")
        # Some block must point back at the block holding the test.
        header = next(b for b in cfg if b.test is not None)
        assert any(
            (dst == header.bid) for b in cfg for dst, _ in b.succs
            if b.bid != cfg.entry
        )

    def test_for_header_holds_the_for_node(self):
        cfg = cfg_of("for i in xs:\n    y = i\n")
        header = next(
            b for b in cfg if b.stmts and isinstance(b.stmts[0], ast.For)
        )
        # The body statement must NOT be inside the header block.
        assert len(header.stmts) == 1

    def test_return_ends_flow_but_dead_code_is_kept(self):
        cfg = cfg_of("def f():\n    return 1\n    x = 2\n")
        body_cfg = build_cfg(ast.parse("return 1\nx = 2\n").body)
        dead = [
            b for b in body_cfg
            if b.stmts and isinstance(b.stmts[0], ast.Assign)
        ]
        assert len(dead) == 1  # analyzed even though unreachable
        preds = {dst for blk in body_cfg for dst, _ in blk.succs}
        assert dead[0].bid not in preds

    def test_try_body_blocks_reach_every_handler(self):
        cfg = cfg_of(
            "try:\n"
            "    a = 1\n"
            "except ValueError:\n"
            "    b = 2\n"
            "except KeyError:\n"
            "    c = 3\n"
        )
        body = next(
            b for b in cfg
            if b.stmts and isinstance(b.stmts[0], ast.Assign)
            and b.stmts[0].targets[0].id == "a"
        )
        handler_entries = {
            b.bid for b in cfg
            if b.stmts and isinstance(b.stmts[0], ast.Assign)
            and b.stmts[0].targets[0].id in ("b", "c")
        }
        assert handler_entries <= {dst for dst, _ in body.succs}

    def test_break_targets_loop_exit(self):
        cfg = cfg_of("while cond:\n    break\nafter = 1\n")
        brk = next(
            b for b in cfg if b.stmts and isinstance(b.stmts[0], ast.Break)
        )
        after = next(
            b for b in cfg
            if b.stmts and isinstance(b.stmts[0], ast.Assign)
        )
        # break's successor eventually reaches the block holding "after".
        reachable, frontier = set(), {dst for dst, _ in brk.succs}
        while frontier:
            bid = frontier.pop()
            if bid in reachable:
                continue
            reachable.add(bid)
            frontier.update(dst for dst, _ in cfg.block(bid).succs)
        assert after.bid in reachable


class TestStmtExpressions:
    def test_for_yields_iter_only(self):
        stmt = ast.parse("for i in xs:\n    f(i)\n").body[0]
        exprs = stmt_expressions(stmt)
        assert len(exprs) == 1 and isinstance(exprs[0], ast.Name)
        assert exprs[0].id == "xs"

    def test_nested_def_body_is_not_included(self):
        stmt = ast.parse("def g(a=default):\n    sink(a)\n").body[0]
        exprs = stmt_expressions(stmt)
        names = {n.id for e in exprs for n in ast.walk(e) if isinstance(n, ast.Name)}
        assert names == {"default"}  # the body's sink(a) is elsewhere


class _CopyAnalysis(ForwardAnalysis):
    """Track string constants assigned to names; join conflicting to '?'."""

    def transfer_stmt(self, stmt, env):
        if isinstance(stmt, ast.Assign) and isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            if isinstance(stmt.value, ast.Constant):
                env[name] = stmt.value.value
            elif isinstance(stmt.value, ast.Name):
                env[name] = env.get(stmt.value.id)
            else:
                env.pop(name, None)

    def join_values(self, a, b):
        return a if a == b else "?"


class TestSolver:
    def entry_env_at_exit(self, src: str):
        cfg = build_cfg(ast.parse(src).body)
        envs = solve(cfg, _CopyAnalysis())
        return envs[cfg.exit]

    def test_straight_line_propagation(self):
        env = self.entry_env_at_exit("a = 'x'\nb = a\n")
        assert env == {"a": "x", "b": "x"}

    def test_join_of_conflicting_branches(self):
        env = self.entry_env_at_exit(
            "if cond:\n    a = 'x'\nelse:\n    a = 'y'\nb = a\n"
        )
        assert env["a"] == "?"

    def test_agreeing_branches_survive_join(self):
        env = self.entry_env_at_exit(
            "if cond:\n    a = 'x'\nelse:\n    a = 'x'\n"
        )
        assert env["a"] == "x"

    def test_loop_reaches_fixpoint(self):
        # The binding rotates around the loop; the solver must
        # terminate and the exit must see the joined value.
        env = self.entry_env_at_exit(
            "a = 'x'\n"
            "while cond:\n"
            "    a = 'y'\n"
            "b = a\n"
        )
        assert env["a"] == "?"
        assert env["b"] == "?"

    def test_one_sided_branch_joins_with_fallthrough(self):
        env = self.entry_env_at_exit(
            "a = 'x'\nif cond:\n    a = 'y'\n"
        )
        assert env["a"] == "?"
