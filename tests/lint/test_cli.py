"""CLI contract tests: exit codes, formats, baseline round-trip.

The ``repro lint`` subcommand promises a stable interface to CI:
exit 0 clean / 1 findings / 2 internal error, ``--format text|json``,
and a create -> re-run-clean -> new-finding-breaks baseline ratchet.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.lint import Baseline
from repro.lint.findings import Finding

pytestmark = pytest.mark.lint

CLEAN = (
    "from repro.errors import SyncError\n"
    "def f():\n"
    "    raise SyncError('no block found', stage='sync')\n"
)
ONE_FINDING = (
    "from repro.errors import SyncError\n"
    "def f():\n"
    "    raise SyncError('no block found')\n"
)
TWO_FINDINGS = ONE_FINDING + (
    "def g():\n"
    "    raise SyncError('still none')\n"
)


@pytest.fixture()
def tree(tmp_path):
    """A tiny repro-shaped package tree the CLI can lint."""
    pkg = tmp_path / "repro" / "somemod"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("__all__ = []\n")
    return pkg


class TestExitCodes:
    def test_exit_zero_on_clean(self, tree, capsys):
        (tree / "mod.py").write_text(CLEAN)
        assert main(["lint", str(tree)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tree, capsys):
        (tree / "mod.py").write_text(ONE_FINDING)
        assert main(["lint", str(tree)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "mod.py:3" in out

    def test_exit_two_on_syntax_error(self, tree, capsys):
        (tree / "mod.py").write_text("def broken(:\n")
        assert main(["lint", str(tree)]) == 2
        assert "internal error" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, tree, capsys):
        (tree / "mod.py").write_text(CLEAN)
        assert main(["lint", str(tree), "--select", "REP999"]) == 2

    def test_exit_two_on_missing_input(self, tmp_path):
        assert main(["lint", str(tmp_path / "nowhere")]) == 2


class TestFormats:
    def test_json_format_is_machine_readable(self, tree, capsys):
        (tree / "mod.py").write_text(ONE_FINDING)
        assert main(["lint", str(tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP001"
        assert finding["line"] == 3
        assert finding["fingerprint"]

    def test_select_and_ignore(self, tree, capsys):
        (tree / "mod.py").write_text(ONE_FINDING)
        assert main(["lint", str(tree), "--select", "REP002"]) == 0
        assert main(["lint", str(tree), "--ignore", "REP001"]) == 0
        assert main(["lint", str(tree), "--select", "rep001"]) == 1  # case folded


class TestBaselineWorkflow:
    def test_create_then_clean_then_new_finding_breaks(self, tree, capsys):
        mod = tree / "mod.py"
        mod.write_text(ONE_FINDING)
        baseline = tree.parent / "baseline.json"

        # create
        assert main(["lint", str(tree), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert baseline.exists()

        # re-run: the known finding is suppressed
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

        # a NEW violation (second raise site) still fails the run
        mod.write_text(TWO_FINDINGS)
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "mod.py:5" in out and "1 baselined" in out

    def test_baselined_findings_survive_line_drift(self, tree):
        mod = tree / "mod.py"
        mod.write_text(ONE_FINDING)
        baseline = tree.parent / "baseline.json"
        assert main(["lint", str(tree), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        # Push the violation down ten lines: fingerprints are
        # line-insensitive, so the baseline still matches.
        mod.write_text("# pad\n" * 10 + ONE_FINDING)
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 0

    def test_fixing_a_finding_keeps_run_green(self, tree):
        mod = tree / "mod.py"
        mod.write_text(ONE_FINDING)
        baseline = tree.parent / "baseline.json"
        assert main(["lint", str(tree), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        mod.write_text(CLEAN)
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 0

    def test_malformed_baseline_is_internal_error(self, tree, capsys):
        (tree / "mod.py").write_text(CLEAN)
        baseline = tree.parent / "baseline.json"
        baseline.write_text("{not json")
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 2


class TestBaselineUnit:
    def _finding(self, message="m", path="p.py", line=1):
        return Finding(rule_id="REP001", slug="no-stage", path=path,
                       line=line, col=0, message=message)

    def test_round_trip(self, tmp_path):
        findings = [self._finding(), self._finding(line=9),
                    self._finding(message="other")]
        Baseline.from_findings(findings).save(tmp_path / "b.json")
        loaded = Baseline.load(tmp_path / "b.json")
        new, old = loaded.split(findings)
        assert new == [] and len(old) == 3

    def test_count_ratchet(self, tmp_path):
        # Two identical findings baselined; a third duplicate is new.
        base = Baseline.from_findings([self._finding(), self._finding(line=5)])
        new, old = base.split(
            [self._finding(), self._finding(line=5), self._finding(line=9)]
        )
        assert len(old) == 2 and len(new) == 1
