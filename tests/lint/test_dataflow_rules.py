"""Good/bad fixture pairs for the flow-sensitive rules REP009–REP012.

Each rule proves three things here:

1. it fires on a violation only a *flow-sensitive* analysis can see —
   source and sink in different statements, connected through an
   intermediate variable whose name carries no unit/taint evidence;
2. it stays quiet on the compliant twin (explicit conversion, dominating
   bounds check, resolution through the sanctioned API);
3. its suppression pragma works end to end.
"""

from __future__ import annotations

import pytest

from repro.lint import lint_source, resolve_rules

pytestmark = pytest.mark.lint


def findings_for(source, rule_id, module_name="repro.somemod", relpath="m.py"):
    return lint_source(
        source,
        module_name=module_name,
        relpath=relpath,
        rules=resolve_rules(select=[rule_id]),
    )


# ---------------------------------------------------------------------------
# REP009 — bit/byte unit confusion
# ---------------------------------------------------------------------------


class TestREP009UnitConfusion:
    def test_bit_value_reaching_seek_through_plain_name(self):
        # ``pos`` has no unit tokens: only the dataflow binding from
        # tell_bits() can classify it. A purely syntactic rule is blind
        # to this.
        bad = (
            "def f(reader, fh):\n"
            "    pos = reader.tell_bits()\n"
            "    fh.seek(pos)\n"
        )
        (f,) = findings_for(bad, "REP009")
        assert f.line == 3
        assert "seek" in f.message

    def test_quiet_after_explicit_conversion(self):
        good = (
            "def f(reader, fh):\n"
            "    pos = reader.tell_bits() >> 3\n"
            "    fh.seek(pos)\n"
        )
        assert findings_for(good, "REP009") == []

    def test_bit_value_indexing_byte_buffer(self):
        bad = (
            "def f(data, reader):\n"
            "    where = reader.tell_bits()\n"
            "    return data[where]\n"
        )
        (f,) = findings_for(bad, "REP009")
        assert "byte buffer" in f.message

    def test_byte_value_flowing_to_bit_kwarg(self):
        bad = (
            "def f(data, fh):\n"
            "    off = fh.tell()\n"
            "    pos = off\n"
            "    return inflate(data, start_bit=pos)\n"
        )
        (f,) = findings_for(bad, "REP009")
        assert "start_bit=" in f.message

    def test_quiet_when_byte_value_lifted_to_bits(self):
        good = (
            "def f(data, fh):\n"
            "    off = fh.tell()\n"
            "    return inflate(data, start_bit=off * 8)\n"
        )
        assert findings_for(good, "REP009") == []

    def test_newtype_annotation_seeds_the_unit(self):
        bad = (
            "from repro.units import ByteOffset\n"
            "def f(data, pos: ByteOffset):\n"
            "    x = pos\n"
            "    return inflate(data, start_bit=x)\n"
        )
        (f,) = findings_for(bad, "REP009")
        assert f.line == 4

    def test_bit_value_compared_to_buffer_len(self):
        bad = (
            "def f(reader, data):\n"
            "    pos = reader.tell_bits()\n"
            "    return pos >= len(data)\n"
        )
        (f,) = findings_for(bad, "REP009")
        assert "len()" in f.message

    def test_double_conversion_is_silent(self):
        # ``(bit >> 3) >> 3`` joins to bit_or_byte: suspicious but
        # ambiguous, and the lattice never reports ambiguity.
        quiet = (
            "def f(reader, fh):\n"
            "    pos = reader.tell_bits() >> 3 >> 3\n"
            "    fh.seek(pos)\n"
        )
        assert findings_for(quiet, "REP009") == []

    def test_branches_joining_different_units_are_silent(self):
        quiet = (
            "def f(reader, fh, fast):\n"
            "    if fast:\n"
            "        pos = reader.tell_bits()\n"
            "    else:\n"
            "        pos = fh.tell()\n"
            "    fh.seek(pos)\n"
        )
        assert findings_for(quiet, "REP009") == []

    def test_pragma_suppresses(self):
        ok = (
            "def f(reader, fh):\n"
            "    pos = reader.tell_bits()\n"
            "    fh.seek(pos)  # lint: allow-unit-confusion(intentional bit-domain file)\n"
        )
        assert findings_for(ok, "REP009") == []


# ---------------------------------------------------------------------------
# REP010 — unvalidated decoded values
# ---------------------------------------------------------------------------


class TestREP010UnvalidatedDecode:
    def test_taint_survives_arithmetic_into_index(self):
        # The sink uses ``v``, one assignment away from the read — a
        # line-local pattern match cannot connect the two.
        bad = (
            "def f(reader, table):\n"
            "    sym = reader.read(5)\n"
            "    v = sym + 1\n"
            "    return table[v]\n"
        )
        (f,) = findings_for(bad, "REP010")
        assert f.line == 4
        assert "index" in f.message

    def test_dominating_guard_validates(self):
        good = (
            "def f(reader, table):\n"
            "    sym = reader.read(5)\n"
            "    if sym >= len(table):\n"
            "        raise ValueError\n"
            "    return table[sym]\n"
        )
        assert findings_for(good, "REP010") == []

    def test_shift_amount_sink(self):
        bad = (
            "def f(reader):\n"
            "    extra = reader.read(7)\n"
            "    return 1 << extra\n"
        )
        (f,) = findings_for(bad, "REP010")
        assert "shift" in f.message

    def test_mask_sanitizes(self):
        good = (
            "def f(reader):\n"
            "    extra = reader.read(7) & 0x1F\n"
            "    return 1 << extra\n"
        )
        assert findings_for(good, "REP010") == []

    def test_min_sanitizes(self):
        good = (
            "def f(reader, table):\n"
            "    sym = min(reader.read(5), len(table) - 1)\n"
            "    return table[sym]\n"
        )
        assert findings_for(good, "REP010") == []

    def test_allocation_size_sink(self):
        bad = (
            "def f(reader):\n"
            "    n = reader.read(16)\n"
            "    return bytearray(n)\n"
        )
        (f,) = findings_for(bad, "REP010")
        assert "allocation" in f.message

    def test_sequence_repeat_sink(self):
        bad = (
            "def f(reader):\n"
            "    n = reader.read(16)\n"
            "    return b'\\x00' * n\n"
        )
        (f,) = findings_for(bad, "REP010")
        assert "repeat" in f.message

    def test_slices_clamp_and_stay_quiet(self):
        good = (
            "def f(reader, data):\n"
            "    n = reader.read(16)\n"
            "    return data[:n]\n"
        )
        assert findings_for(good, "REP010") == []

    def test_guard_on_one_path_only_still_fires(self):
        # Flow-sensitivity the other way: the unguarded else-path
        # reaches the sink, so the joined state stays tainted.
        bad = (
            "def f(reader, table, strict):\n"
            "    sym = reader.read(5)\n"
            "    if strict:\n"
            "        if sym >= len(table):\n"
            "            raise ValueError\n"
            "        x = 1\n"
            "    return table[sym]\n"
        )
        # The inner guard validates sym on both arms of *its* branch,
        # but the ``strict`` False path never ran the comparison.
        assert [f.line for f in findings_for(bad, "REP010")] == [7]

    def test_pragma_suppresses(self):
        ok = (
            "def f(reader, table):\n"
            "    sym = reader.read(5)\n"
            "    return table[sym]  # lint: allow-unvalidated-decode(table spans the full 5-bit range)\n"
        )
        assert findings_for(ok, "REP010") == []


# ---------------------------------------------------------------------------
# REP011 — marker symbols escaping the symbol domain
# ---------------------------------------------------------------------------


class TestREP011MarkerEscape:
    def test_marker_sequence_reaching_bytes_via_alias(self):
        # ``x`` is a plain alias: only the flow binding knows it holds
        # marker symbols.
        bad = (
            "from repro.core.marker import undetermined_window\n"
            "def f(n):\n"
            "    syms = undetermined_window(n)\n"
            "    x = syms\n"
            "    return bytes(x)\n"
        )
        (f,) = findings_for(bad, "REP011")
        assert f.line == 5
        assert "bytes()" in f.message

    def test_quiet_through_to_bytes(self):
        good = (
            "from repro.core.marker import to_bytes, resolve\n"
            "def f(syms, window):\n"
            "    return to_bytes(resolve(syms, window))\n"
        )
        assert findings_for(good, "REP011") == []

    def test_marker_scalar_reaching_chr(self):
        bad = (
            "from repro.core.marker import MARKER_BASE\n"
            "def f(j):\n"
            "    code = MARKER_BASE + j\n"
            "    c = code\n"
            "    return chr(c)\n"
        )
        (f,) = findings_for(bad, "REP011")
        assert "chr()" in f.message

    def test_boundary_compare_clears_taint(self):
        good = (
            "from repro.core.marker import MARKER_BASE\n"
            "def f(syms):\n"
            "    for sym in syms:\n"
            "        if sym < MARKER_BASE:\n"
            "            yield chr(sym)\n"
        )
        assert findings_for(good, "REP011") == []

    def test_subtracting_marker_base_resolves(self):
        good = (
            "from repro.core.marker import MARKER_BASE\n"
            "def f(code, window):\n"
            "    byte = window[code - MARKER_BASE]\n"
            "    return chr(byte)\n"
        )
        assert findings_for(good, "REP011") == []

    def test_iteration_element_is_marker_tainted(self):
        bad = (
            "from repro.core.marker import undetermined_window\n"
            "def f(n):\n"
            "    out = []\n"
            "    for sym in undetermined_window(n):\n"
            "        out.append(chr(sym))\n"
            "    return out\n"
        )
        (f,) = findings_for(bad, "REP011")
        assert f.line == 5

    def test_translate_module_is_exempt(self):
        bad = (
            "from repro.core.marker import undetermined_window\n"
            "def f(n):\n"
            "    return bytes(undetermined_window(n))\n"
        )
        assert (
            findings_for(
                bad, "REP011",
                module_name="repro.core.translate",
                relpath="src/repro/core/translate.py",
            )
            == []
        )

    def test_pragma_suppresses(self):
        ok = (
            "from repro.core.marker import undetermined_window\n"
            "def f(n):\n"
            "    return bytes(undetermined_window(n))  # lint: allow-marker-escape(test fixture wants the ValueError)\n"
        )
        assert findings_for(ok, "REP011") == []

    # -- PR 9: vectorized sinks and take() propagation ----------------------

    def test_astype_uint8_on_marker_array_is_a_sink(self):
        bad = (
            "import numpy as np\n"
            "from repro.core.marker import undetermined_window\n"
            "def f(n):\n"
            "    syms = undetermined_window(n)\n"
            "    return syms.astype(np.uint8)\n"
        )
        (f,) = findings_for(bad, "REP011")
        assert f.line == 5
        assert "astype(uint8)" in f.message

    def test_astype_uint8_on_clean_array_is_quiet(self):
        good = (
            "import numpy as np\n"
            "def f(values):\n"
            "    arr = np.asarray(values)\n"
            "    return arr.astype(np.uint8)\n"
        )
        assert findings_for(good, "REP011") == []

    def test_astype_uint8_tobytes_reports_once(self):
        # The cast is the reported sink; its (already corrupted) result
        # is byte-shaped, so the trailing tobytes() must not double-fire.
        bad = (
            "import numpy as np\n"
            "from repro.core.marker import undetermined_window\n"
            "def f(n):\n"
            "    return undetermined_window(n).astype(np.uint8).tobytes()\n"
        )
        (f,) = findings_for(bad, "REP011")
        assert "astype(uint8)" in f.message

    def test_take_propagates_source_taint(self):
        bad = (
            "import numpy as np\n"
            "from repro.core.marker import undetermined_window\n"
            "def f(n, idx):\n"
            "    gathered = np.take(undetermined_window(n), idx)\n"
            "    return bytes(gathered)\n"
        )
        (f,) = findings_for(bad, "REP011")
        assert f.line == 5
        assert "bytes()" in f.message

    def test_take_method_propagates_source_taint(self):
        bad = (
            "from repro.core.marker import undetermined_window\n"
            "def f(n, idx):\n"
            "    syms = undetermined_window(n)\n"
            "    return bytes(syms.take(idx))\n"
        )
        (f,) = findings_for(bad, "REP011")
        assert "bytes()" in f.message

    def test_take_indices_do_not_launder_or_taint(self):
        # Clean source + tainted indices: the gather result carries the
        # *source's* domain, so this is byte-safe.
        good = (
            "import numpy as np\n"
            "from repro.core.marker import MARKER_BASE, undetermined_window\n"
            "def f(lut, n):\n"
            "    positions = undetermined_window(n) - MARKER_BASE\n"
            "    return bytes(np.take(lut, positions))\n"
        )
        assert findings_for(good, "REP011") == []

    def test_marker_module_is_exempt(self):
        bad = (
            "import numpy as np\n"
            "from repro.core.marker import undetermined_window\n"
            "def f(n):\n"
            "    return undetermined_window(n).astype(np.uint8)\n"
        )
        assert (
            findings_for(
                bad, "REP011",
                module_name="repro.core.marker",
                relpath="src/repro/core/marker.py",
            )
            == []
        )


# ---------------------------------------------------------------------------
# REP012 — pragmas must carry a reason
# ---------------------------------------------------------------------------


class TestREP012PragmaReason:
    def test_empty_reason_is_a_finding(self):
        bad = "x = eval('1')  # lint" ": allow-no-eval()\n"
        (f,) = findings_for(bad, "REP012")
        assert f.line == 1
        assert "allow-no-eval()" in f.message

    def test_reasoned_pragma_is_quiet(self):
        good = "x = 1  # lint" ": allow-no-eval(constant fold fixture)\n"
        assert findings_for(good, "REP012") == []

    def test_empty_pragma_does_not_suppress_its_rule_either(self):
        # The empty pragma yields REP012 *and* leaves the original
        # finding unsuppressed — both must surface.
        bad = (
            "def f(reader, table):\n"
            "    sym = reader.read(5)\n"
            "    return table[sym]  # lint"
            ": allow-unvalidated-decode()\n"
        )
        rep010 = findings_for(bad, "REP010")
        rep012 = findings_for(bad, "REP012")
        assert len(rep010) == 1 and len(rep012) == 1
