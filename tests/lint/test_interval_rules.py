"""Fixture tests for the interval-proof rules (REP018–REP021).

Each rule gets violation/compliant twins exercising the proof forms the
DEFLATE hot paths actually use (seeded names, masks, clamps, branch
guards), plus scope and pragma-suppression checks.  The
``--prove-pragmas`` workflow is pinned end to end: a fixture tree with
two provable ``allow-unbudgeted-alloc`` pragmas must report both as
discharged — the acceptance bar for retiring hand-written pragma prose
in favour of machine-checked bounds.
"""

from __future__ import annotations

import ast
import io
from pathlib import Path

import pytest

from repro.lint import lint_source, lint_sources, resolve_rules
from repro.lint.callgraph import Project
from repro.lint.module import ModuleInfo
from repro.lint.pragmas import extract_pragmas
from repro.lint.rules.proven_alloc import (
    discharge_report,
    format_discharge_report,
)
from repro.lint.runner import prove_pragmas

pytestmark = pytest.mark.lint


def findings_for(source, rule_id, module_name="repro.somemod", relpath="m.py"):
    return lint_source(
        source,
        module_name=module_name,
        relpath=relpath,
        rules=resolve_rules(select=[rule_id]),
    )


def findings_for_tree(sources, rule_id):
    return lint_sources(sources, rules=resolve_rules(select=[rule_id]))


def project_for(sources):
    """Build the Project lint_sources would, pragmas included."""
    modules = []
    for relpath, source in sources.items():
        name = ".".join(Path(relpath).with_suffix("").parts)
        modules.append(ModuleInfo(
            path=Path(relpath),
            relpath=relpath,
            name=name,
            source=source,
            tree=ast.parse(source),
            pragmas=extract_pragmas(source),
        ))
    return Project(modules)


# ---------------------------------------------------------------------------
# REP018 — unproved shift width
# ---------------------------------------------------------------------------


class TestShiftWidth:
    def test_unbounded_amount_flagged(self):
        (f,) = findings_for("""
def refill(bitbuf, n):
    return bitbuf | (0xFF << (8 * n))
""", "REP018", module_name="repro.deflate.bitio", relpath="bitio.py")
        assert "no proved bound" in f.message
        assert "8 * n" in f.message

    def test_seeded_protocol_names_prove_the_bound(self):
        assert findings_for("""
def take(bitbuf, nbits):
    return (bitbuf >> nbits) | (1 << nbits)
""", "REP018", module_name="repro.deflate.bitio", relpath="bitio.py") == []

    def test_guard_discharges_via_branch_refinement(self):
        assert findings_for("""
def shift(x, n):
    if n > 64:
        raise ValueError("amount exceeds the refill word")
    return x << n
""", "REP018", module_name="repro.deflate.bitio", relpath="bitio.py") == []

    def test_mask_discharges(self):
        assert findings_for("""
def shift(x, n):
    return x << (n & 63)
""", "REP018", module_name="repro.deflate.crc32", relpath="crc32.py") == []

    def test_out_of_scope_module_is_skipped(self):
        assert findings_for("""
def refill(bitbuf, n):
    return bitbuf | (0xFF << (8 * n))
""", "REP018", module_name="repro.core.pugz", relpath="pugz.py") == []

    def test_pragma_suppresses(self):
        assert findings_for("""
def refill(bitbuf, n):
    return bitbuf | (0xFF << (8 * n))  # lint: allow-unproved-shift(fixture)
""", "REP018", module_name="repro.deflate.bitio", relpath="bitio.py") == []


# ---------------------------------------------------------------------------
# REP019 — unproved index bounds
# ---------------------------------------------------------------------------


class TestIndexBounds:
    def test_positive_backref_arithmetic_flagged(self):
        (f,) = findings_for("""
def emit(out, distance, length):
    for _ in range(length):
        out.append(out[len(out) - distance])
""", "REP019", module_name="repro.deflate.inflate", relpath="inflate.py")
        assert "out" in f.message

    def test_guarded_negative_backref_is_proved(self):
        assert findings_for("""
def emit(out, distance, length):
    if distance > 32768:
        raise ValueError("beyond window")
    if distance < 1:
        raise ValueError("zero distance")
    for _ in range(length):
        out.append(out[-distance])
""", "REP019", module_name="repro.deflate.inflate", relpath="inflate.py") == []

    def test_masked_table_lookup_is_proved(self):
        assert findings_for("""
def decode(table, bitbuf):
    nbits, sym = table[bitbuf & 32767]
    return nbits, sym
""", "REP019", module_name="repro.deflate.inflate", relpath="inflate.py") == []

    def test_unmasked_table_lookup_flagged(self):
        (f,) = findings_for("""
def decode(table, bitbuf):
    nbits, sym = table[bitbuf]
    return nbits, sym
""", "REP019", module_name="repro.deflate.inflate", relpath="inflate.py")
        assert "table" in f.message

    def test_out_of_scope_module_is_skipped(self):
        assert findings_for("""
def decode(table, bitbuf):
    return table[bitbuf]
""", "REP019", module_name="repro.core.sync", relpath="sync.py") == []

    def test_pragma_suppresses(self):
        assert findings_for("""
def decode(table, bitbuf):
    return table[bitbuf]  # lint: allow-unproved-index(fixture)
""", "REP019", module_name="repro.deflate.lz77", relpath="lz77.py") == []


# ---------------------------------------------------------------------------
# REP020 — the proved-bound arm (budget arm is covered in
# test_xfunc_rules.py, inherited from REP017)
# ---------------------------------------------------------------------------


class TestProvenAllocArm:
    def test_unproved_unchecked_alloc_flagged(self):
        (f,) = findings_for("""
def emit(length):
    out = bytearray()
    while length > 0:
        out += bytes(length)
        length -= 1
    return out
""", "REP020")
        assert "no proved spec-constant size bound" in f.message

    def test_clamp_to_spec_constant_proves_the_site(self):
        assert findings_for("""
def emit(length):
    out = bytearray()
    while length > 0:
        chunk = min(length, 258)
        out += b"?" * chunk
        length -= chunk
    return out
""", "REP020") == []

    def test_mask_proves_the_site(self):
        assert findings_for("""
def fill(n, reps):
    out = bytearray()
    for _ in range(reps):
        out += b"\\x00" * (n & 32767)
    return out
""", "REP020") == []


# ---------------------------------------------------------------------------
# --prove-pragmas: the discharge workflow
# ---------------------------------------------------------------------------

# Two provable pragma sites (the clamp and the mask), one genuinely
# required pragma, one stale pragma.
_DISCHARGE_TREE = {
    "fix/salvage.py": """\
def salvage(length):
    out = bytearray()
    while length > 0:
        unknown = min(length, 258)
        out += b"?" * unknown  # lint: allow-unbudgeted-alloc(spec caps match length at MAX_MATCH)
        length -= unknown
    return out
""",
    "fix/tables.py": """\
def build(sizes):
    tables = []
    for size in sizes:
        n = size & 32767
        tables.append([0] * n)  # lint: allow-unbudgeted-alloc(window-sized fill)
    return tables


def copy_unbounded(n, reps):
    out = bytearray()
    for _ in range(reps):
        out += bytes(n)  # lint: allow-unbudgeted-alloc(caller bounds n)
    total = 0  # lint: allow-unbudgeted-alloc(left over from a refactor)
    return out, total
""",
}


class TestDischargeReport:
    def test_two_provable_pragmas_are_discharged(self):
        # The acceptance bar for the pragma-retirement workflow: the
        # prover must discharge (at least) the two hand-written
        # spec-bound pragmas so they can be deleted from source.
        report = discharge_report(project_for(_DISCHARGE_TREE))
        assert len(report["discharged"]) >= 2
        paths = {path for path, _line, _detail in report["discharged"]}
        assert paths == {"fix/salvage.py", "fix/tables.py"}
        # Each discharged entry carries its interval witness.
        for _path, _line, detail in report["discharged"]:
            assert "[" in detail and "]" in detail

    def test_required_and_stale_are_distinguished(self):
        report = discharge_report(project_for(_DISCHARGE_TREE))
        assert [(p, d) for p, _l, d in report["required"]] == [
            ("fix/tables.py", "caller bounds n"),
        ]
        (stale,) = report["stale"]
        assert stale[0] == "fix/tables.py"
        assert "no in-loop computed-size allocation" in stale[2]

    def test_proved_sites_listed_even_without_pragmas(self):
        source = {"fix/clean.py": """\
def emit(length):
    out = bytearray()
    while length > 0:
        chunk = min(length, 258)
        out += b"?" * chunk
        length -= chunk
    return out
"""}
        report = discharge_report(project_for(source))
        assert report["discharged"] == []
        assert report["required"] == []
        assert report["stale"] == []
        assert len(report["proved"]) == 1

    def test_format_renders_all_sections(self):
        text = format_discharge_report(
            discharge_report(project_for(_DISCHARGE_TREE))
        )
        assert "DISCHARGES" in text
        assert "REQUIRED" in text
        assert "STALE" in text
        assert "proved allocation bounds" in text

    def test_runner_smoke(self, tmp_path):
        (tmp_path / "salvage.py").write_text(_DISCHARGE_TREE["fix/salvage.py"])
        out = io.StringIO()
        assert prove_pragmas([str(tmp_path)], out=out) == 0
        text = out.getvalue()
        assert "DISCHARGES" in text
        assert "salvage.py" in text

    def test_runner_no_files_is_an_error(self, tmp_path):
        out = io.StringIO()
        assert prove_pragmas([str(tmp_path / "missing")], out=out) == 2


# ---------------------------------------------------------------------------
# REP021 — spec-literal provenance
# ---------------------------------------------------------------------------


class TestSpecLiterals:
    def test_distinctive_values_flagged_anywhere(self):
        findings = findings_for("""
WINDOW = 32768

def f():
    return 258
""", "REP021")
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 2
        assert "WINDOW_SIZE" in messages
        assert "MAX_MATCH" in messages

    def test_gzip_magic_bytes_flagged(self):
        (f,) = findings_for("""
def is_gzip(data):
    return data[:3] == b"\\x1f\\x8b\\x08"
""", "REP021")
        assert "GZIP_MAGIC" in f.message

    def test_ambiguous_value_flagged_only_in_spec_comparison(self):
        (f,) = findings_for("""
def check(hlit):
    if hlit > 286:
        raise ValueError("bad hlit")
""", "REP021")
        assert "286" in f.message and "MAX_HLIT" in f.message

    def test_ambiguous_value_elsewhere_is_clean(self):
        assert findings_for("""
def f(items):
    x = 286
    for i in range(30):
        x += 15
    return x + 32
""", "REP021") == []

    def test_constants_module_is_exempt(self):
        assert findings_for(
            "WINDOW_SIZE = 32768\nMAX_MATCH = 258\n",
            "REP021",
            module_name="repro.deflate.constants",
            relpath="constants.py",
        ) == []

    def test_lint_package_is_exempt(self):
        assert findings_for(
            "_TABLE_RANGE = (0, 32768)\n",
            "REP021",
            module_name="repro.lint.intervals",
            relpath="intervals.py",
        ) == []

    def test_pragma_suppresses(self):
        assert findings_for("""
WINDOW = 32768  # lint: allow-magic-spec-literal(fixture)
""", "REP021") == []
