"""Property test: observed decode values ⊆ engine-proved intervals.

The interval rules (REP018–REP020) are only worth trusting if the
intervals themselves are sound.  This test closes the loop against the
real decoder: run the abstract interpreter over the *actual*
``_decode_huffman_block`` source, take the hulls it proves for the
load-bearing names (``length``, ``distance``, ``sym``, ``nbits``), then
decode the full 50-stream differential corpus with token capture and
check every observed runtime value falls inside the proved hull.

A failure here means the abstract semantics drifted from the concrete
semantics — the worst possible lint bug, because every REP018/REP019/
REP020 "proof" built on the drifting transfer function is vacuous.
"""

from __future__ import annotations

import ast
import inspect
from pathlib import Path

import pytest

from repro.deflate.inflate import inflate
from repro.lint.intervals import (
    Interval,
    joined_name_intervals,
    module_constant_env,
    run_intervals,
)
from tests.deflate.test_differential_fuzz import (
    SEEDS,
    SHAPES,
    compress_shape,
    make_text,
)

pytestmark = pytest.mark.lint


@pytest.fixture(scope="module")
def proved_hulls():
    """Interval hulls for the general decode loop, from its real source."""
    source = Path(inspect.getsourcefile(inflate)).read_text()
    tree = ast.parse(source)
    func = next(
        node for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef)
        and node.name == "_decode_huffman_block"
    )
    run = run_intervals(
        func, func.body, module_env=module_constant_env(tree)
    )
    return joined_name_intervals(run)


@pytest.fixture(scope="module")
def observed():
    """min/max of every decode quantity over the differential corpus."""
    lengths, distances, literals = [], [], []
    streams = 0

    def decode_and_record(text, shape):
        nonlocal streams
        comp = compress_shape(text, shape)
        result = inflate(comp, capture_tokens=True)
        assert bytes(result.data) == text
        offsets = result.tokens.offsets()
        values = result.tokens.values()
        matches = offsets > 0
        if matches.any():
            lengths.append((int(values[matches].min()),
                            int(values[matches].max())))
            distances.append((int(offsets[matches].min()),
                              int(offsets[matches].max())))
        lits = values[~matches]
        if lits.size:
            literals.append((int(lits.min()), int(lits.max())))
        streams += 1

    for seed in SEEDS:
        text = make_text(seed, n=12_000)
        for shape in SHAPES:
            decode_and_record(text, shape)
    assert streams == len(SEEDS) * len(SHAPES) >= 50
    # One run-heavy stream so MAX_MATCH-length copies are exercised —
    # DNA/FASTQ text alone rarely emits a full 258-byte match.
    decode_and_record(b"A" * 8192 + b"CGT" * 2048, "dynamic_best")
    assert lengths, "corpus produced no matches — not exercising the loop"
    return {
        "length": lengths,
        "distance": distances,
        "literal": literals,
    }


def _hull_of(pairs):
    return min(lo for lo, _ in pairs), max(hi for _, hi in pairs)


class TestProvedBoundsAreFinite:
    """The engine must actually *claim* spec-shaped bounds — a TOP hull
    would make the containment checks below vacuously true."""

    def test_length_hull(self, proved_hulls):
        iv = proved_hulls["length"]
        assert iv.lo is not None and iv.lo >= 3
        # lbase caps at 258; up to 5 extra bits may be added before the
        # spec-level cap applies, so the sound hull tops out at 289.
        assert iv.hi is not None and 258 <= iv.hi <= 289

    def test_distance_hull(self, proved_hulls):
        iv = proved_hulls["distance"]
        assert iv.lo is not None and iv.lo >= 1
        assert iv.hi == 32768

    def test_symbol_hulls(self, proved_hulls):
        assert proved_hulls["sym"].hi is not None
        assert proved_hulls["sym"].hi <= 287
        assert proved_hulls["nbits"].hi is not None
        assert proved_hulls["nbits"].hi <= 15
        # dsym's joined hull spans the pre-guard table load ([0, 287]);
        # the MAX_USED_DIST refinement shows downstream, where the
        # extra-bits lookup is bounded by the distance table's [0, 13].
        assert proved_hulls["dsym"].hi is not None
        assert proved_hulls["dsym"].hi <= 287
        assert proved_hulls["dex"] == Interval(0, 13)

    def test_strict_placeholder_hull(self, proved_hulls):
        # The '?' fill in the unknown-context branch: proved <= MAX_MATCH.
        assert proved_hulls["unknown"].hi == 258


class TestObservedWithinProved:
    """Every concrete value the decoder produced on the corpus must lie
    inside the corresponding proved hull (soundness, checked on the
    convex hull of observations — intervals are convex)."""

    def test_match_lengths(self, proved_hulls, observed):
        lo, hi = _hull_of(observed["length"])
        assert proved_hulls["length"].contains(lo)
        assert proved_hulls["length"].contains(hi)

    def test_match_distances(self, proved_hulls, observed):
        lo, hi = _hull_of(observed["distance"])
        assert proved_hulls["distance"].contains(lo)
        assert proved_hulls["distance"].contains(hi)

    def test_literals_within_symbol_hull(self, proved_hulls, observed):
        lo, hi = _hull_of(observed["literal"])
        assert proved_hulls["sym"].contains(lo)
        assert proved_hulls["sym"].contains(hi)
        # Literals are additionally byte-valued by construction.
        assert 0 <= lo <= hi <= 255

    def test_observed_hulls_are_not_degenerate(self, observed):
        # The corpus must genuinely exercise the match machinery: the
        # run-heavy stream reaches MAX_MATCH-scale lengths and the
        # FASTQ-like streams reach kilobyte match distances.
        _lo, len_hi = _hull_of(observed["length"])
        _dlo, dist_hi = _hull_of(observed["distance"])
        assert len_hi >= 200
        assert dist_hi >= 1024
