"""Unit tests for the interval abstract interpreter (REP018–REP020 base).

Three layers:

* lattice/arithmetic units — the `Interval` algebra must satisfy the
  standard laws the soundness argument leans on (join is a hull, meet
  an intersection, widening jumps to thresholds before ±∞);
* solver behaviour on in-memory sources — branch refinement, masking,
  module-constant chaining, and the loop patterns the DEFLATE code
  uses;
* termination — widening must force a fixpoint on large-trip-count
  counters, nested loops, and mutual recursion through the SCC
  summary fixpoint, in bounded time.
"""

from __future__ import annotations

import pytest

from repro.lint.intervals import (
    BOTTOM,
    TOP,
    BytesVal,
    Interval,
    SeqVal,
    analyze_source,
    fmt_interval,
    joined_name_intervals,
    spec_cap_for,
    spec_thresholds,
)

pytestmark = pytest.mark.lint


def name_hull(source, funcname=None):
    return joined_name_intervals(analyze_source(source, funcname))


# ---------------------------------------------------------------------------
# lattice algebra
# ---------------------------------------------------------------------------


class TestIntervalAlgebra:
    def test_join_is_hull(self):
        assert Interval(0, 5).join(Interval(10, 20)) == Interval(0, 20)
        assert Interval(None, 5).join(Interval(0, None)) == TOP

    def test_join_with_empty_is_identity(self):
        assert BOTTOM.join(Interval(3, 4)) == Interval(3, 4)
        assert Interval(3, 4).join(BOTTOM) == Interval(3, 4)

    def test_meet_is_intersection(self):
        assert Interval(0, 10).meet(Interval(5, 20)) == Interval(5, 10)
        assert Interval(0, 3).meet(Interval(5, 9)).is_empty

    def test_contains_and_point(self):
        assert Interval(0, 258).contains(258)
        assert not Interval(0, 258).contains(259)
        assert Interval(7, 7).is_point

    def test_widen_keeps_stable_bounds(self):
        t = spec_thresholds()
        assert Interval(0, 10).widen(Interval(0, 10), t) == Interval(0, 10)

    def test_widen_snaps_to_spec_threshold(self):
        t = spec_thresholds()
        w = Interval(0, 10).widen(Interval(0, 11), t)
        assert w.hi is not None and w.hi >= 11
        assert w.hi in t  # a spec constant / power of two, not +inf

    def test_widen_escapes_to_infinity_past_thresholds(self):
        t = spec_thresholds()
        big = max(t) + 1
        w = Interval(0, 10).widen(Interval(0, big), t)
        assert w.hi is None

    def test_widen_is_an_upper_bound(self):
        t = spec_thresholds()
        a, b = Interval(3, 40), Interval(1, 300)
        w = a.widen(b, t)
        assert w.lo is None or (w.lo <= a.lo and w.lo <= b.lo)
        assert w.hi is None or (w.hi >= a.hi and w.hi >= b.hi)

    def test_fmt(self):
        assert fmt_interval(Interval(0, 258)) == "[0, 258]"
        assert fmt_interval(TOP) == "[-inf, +inf]"

    def test_spec_cap_for_picks_tightest(self):
        assert spec_cap_for(258) == ("MAX_MATCH", 258)
        assert spec_cap_for(300)[1] > 258
        assert spec_cap_for(32768) == ("WINDOW_SIZE", 32768)
        assert spec_cap_for(1 << 30) is None


# ---------------------------------------------------------------------------
# solver behaviour on source
# ---------------------------------------------------------------------------


class TestTransfer:
    def test_mask_clamps(self):
        hull = name_hull("""
def f(x):
    y = x & 32767
    return y
""", "f")
        assert hull["y"] == Interval(0, 32767)

    def test_min_clamp(self):
        hull = name_hull("""
def f(n):
    m = min(n, 258)
    return m
""", "f")
        assert hull["m"].hi == 258

    def test_branch_refinement_guard(self):
        hull = name_hull("""
def f(n):
    if n > 15:
        raise ValueError
    if n < 0:
        raise ValueError
    k = n
    return k
""", "f")
        assert hull["k"] == Interval(0, 15)

    def test_module_constant_chain(self):
        hull = name_hull("""
_BITS = 15
_SIZE = 1 << _BITS
_MASK = _SIZE - 1

def h(x):
    v = x & _MASK
    return v
""", "h")
        assert hull["v"] == Interval(0, 32767)

    def test_spec_constant_by_name(self):
        hull = name_hull("""
from repro.deflate import constants as C

def f():
    m = C.MAX_MATCH
    return m
""", "f")
        assert hull["m"] == Interval(258, 258)

    def test_read_model(self):
        hull = name_hull("""
def f(reader):
    v = reader.read(13)
    return v
""", "f")
        assert hull["v"] == Interval(0, (1 << 13) - 1)

    def test_sequence_repeat_length(self):
        run = analyze_source("""
def f(n):
    k = min(n, 258)
    buf = b"?" * k
    return buf
""", "f")
        hulls = {}
        for kind, node, env in run.replay():
            hulls.update({k: v for k, v in env.items()
                          if isinstance(v, BytesVal)})
        assert hulls["buf"].length.hi == 258
        assert hulls["buf"].length.lo == 0  # negative count => empty

    def test_tuple_unpack_from_table(self):
        hull = name_hull("""
def f(table, i):
    nbits, sym = table[i & 32767]
    return nbits + sym
""", "f")
        assert hull["nbits"] == Interval(0, 15)
        assert hull["sym"] == Interval(0, 287)


# ---------------------------------------------------------------------------
# widening termination
# ---------------------------------------------------------------------------


class TestTermination:
    def test_counter_2000_iterations(self):
        # Plain iteration would take 2000 rounds; widening + narrowing
        # must converge fast and still recover the exact guard bound.
        hull = name_hull("""
def f():
    i = 0
    while i < 2000:
        i += 1
    return i
""", "f")
        assert hull["i"].lo == 0
        assert hull["i"].hi is not None and hull["i"].hi >= 2000

    def test_counter_narrowing_recovers_exit_value(self):
        run = analyze_source("""
def f():
    i = 0
    while i < 2000:
        i += 1
    return i
""", "f")
        ret = run.return_interval()
        assert ret == Interval(2000, 2000)

    def test_nested_loops_terminate(self):
        hull = name_hull("""
def f():
    total = 0
    i = 0
    while i < 100:
        j = 0
        while j < 50:
            total += 1
            j += 1
        i += 1
    return total
""", "f")
        assert hull["i"].lo == 0 and hull["i"].hi is not None
        assert hull["j"].lo == 0 and hull["j"].hi is not None

    def test_unbounded_loop_goes_to_top_not_forever(self):
        hull = name_hull("""
def f(stream):
    n = 0
    while stream.more():
        n += 1
    return n
""", "f")
        assert hull["n"].lo == 0
        assert hull["n"].hi is None  # sound: no bound exists

    def test_mutual_recursion_summaries_converge(self):
        import ast as _ast
        from pathlib import Path

        from repro.lint.callgraph import Project
        from repro.lint.module import ModuleInfo

        source = """
def even(n):
    if n <= 0:
        return 0
    return odd(n - 1)

def odd(n):
    if n <= 0:
        return 1
    return even(n - 1)
"""
        module = ModuleInfo(
            path=Path("mutual.py"),
            relpath="mutual.py",
            name="repro.mutual",
            source=source,
            tree=_ast.parse(source),
        )
        project = Project([module])
        summaries = project.summaries()
        # The SCC fixpoint must terminate; in-SCC calls resolve to no
        # claim (sound: no widening across summary rounds), so the
        # recursive returns carry no interval — but both summaries
        # must exist and agree on their call-graph edges.
        ev = summaries["repro.mutual.even"]
        od = summaries["repro.mutual.odd"]
        assert ev.return_interval is None
        assert od.return_interval is None
        assert "repro.mutual.odd" in ev.calls
        assert "repro.mutual.even" in od.calls

    def test_acyclic_chain_propagates_return_interval(self):
        import ast as _ast
        from pathlib import Path

        from repro.lint.callgraph import Project
        from repro.lint.module import ModuleInfo

        source = """
def clamp(n):
    return min(n, 258)

def outer(n):
    return clamp(n)
"""
        module = ModuleInfo(
            path=Path("chain.py"),
            relpath="chain.py",
            name="repro.chain",
            source=source,
            tree=_ast.parse(source),
        )
        project = Project([module])
        summaries = project.summaries()
        assert summaries["repro.chain.clamp"].return_interval == (None, 258)
        assert summaries["repro.chain.outer"].return_interval == (None, 258)
