"""Fixture-driven good/bad snippet pairs for every lint rule.

Each rule gets at least one snippet it must fire on and one it must
stay quiet on; scope-limited rules additionally prove they ignore the
same code outside their scope.  Snippets are linted in memory via
:func:`repro.lint.engine.lint_source` with an explicit module name, so
no temporary package trees are needed.
"""

from __future__ import annotations

import pytest

from repro.lint import lint_source, resolve_rules

pytestmark = pytest.mark.lint


def findings_for(source, rule_id, module_name="repro.somemod", relpath="m.py"):
    return lint_source(
        source,
        module_name=module_name,
        relpath=relpath,
        rules=resolve_rules(select=[rule_id]),
    )


# ---------------------------------------------------------------------------
# REP001 — ReproError raise sites carry stage= (and location kwargs)
# ---------------------------------------------------------------------------


class TestREP001ErrorContext:
    def test_fires_on_missing_stage(self):
        bad = (
            "from repro.errors import GzipFormatError\n"
            "def f():\n"
            "    raise GzipFormatError('bad magic')\n"
        )
        (f,) = findings_for(bad, "REP001")
        assert f.rule_id == "REP001"
        assert "stage=" in f.message
        assert f.line == 3

    def test_quiet_with_stage(self):
        good = (
            "from repro.errors import GzipFormatError\n"
            "def f():\n"
            "    raise GzipFormatError('bad magic', stage='container')\n"
        )
        assert findings_for(good, "REP001") == []

    def test_local_subclass_is_covered(self):
        bad = (
            "from repro.errors import ReproError\n"
            "class MyError(ReproError):\n"
            "    pass\n"
            "def f():\n"
            "    raise MyError('oops')\n"
        )
        (f,) = findings_for(bad, "REP001")
        assert "MyError" in f.message

    def test_non_repro_errors_ignored(self):
        good = "def f():\n    raise ValueError('not ours')\n"
        assert findings_for(good, "REP001") == []

    def test_reraise_and_exception_values_ignored(self):
        good = (
            "from repro.errors import SyncError\n"
            "def f(err):\n"
            "    try:\n"
            "        g()\n"
            "    except SyncError:\n"
            "        raise\n"
            "    raise err\n"
        )
        assert findings_for(good, "REP001") == []

    def test_bitio_also_requires_bit_offset(self):
        bad = (
            "from repro.errors import BitstreamError\n"
            "def f():\n"
            "    raise BitstreamError('eof', stage='bitio')\n"
        )
        (f,) = findings_for(bad, "REP001", module_name="repro.deflate.bitio")
        assert "bit_offset=" in f.message
        good = (
            "from repro.errors import BitstreamError\n"
            "def f():\n"
            "    raise BitstreamError('eof', stage='bitio', bit_offset=8)\n"
        )
        assert findings_for(good, "REP001", module_name="repro.deflate.bitio") == []

    def test_pugz_accepts_chunk_index_as_location(self):
        good = (
            "from repro.errors import ReproError\n"
            "def f():\n"
            "    raise ReproError('lost', stage='pass1', chunk_index=3)\n"
        )
        assert findings_for(good, "REP001", module_name="repro.core.pugz") == []
        bad = (
            "from repro.errors import ReproError\n"
            "def f():\n"
            "    raise ReproError('lost', stage='pass1')\n"
        )
        (f,) = findings_for(bad, "REP001", module_name="repro.core.pugz")
        assert "chunk_index" in f.message

    def test_kwargs_spread_is_skipped(self):
        good = (
            "from repro.errors import SyncError\n"
            "def f(ctx):\n"
            "    raise SyncError('no block', **ctx)\n"
        )
        assert findings_for(good, "REP001") == []


# ---------------------------------------------------------------------------
# REP002 — no broad except in repro.deflate / repro.core
# ---------------------------------------------------------------------------


_BROAD = (
    "def f():\n"
    "    try:\n"
    "        g()\n"
    "    except Exception:\n"
    "        return None\n"
)


class TestREP002BroadExcept:
    def test_fires_in_deflate(self):
        (f,) = findings_for(_BROAD, "REP002", module_name="repro.deflate.streaming")
        assert "except Exception" in f.message
        assert f.line == 4

    def test_fires_on_bare_except_and_tuple(self):
        bad = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        pass\n"
            "    try:\n"
            "        g()\n"
            "    except (ValueError, BaseException):\n"
            "        pass\n"
        )
        found = findings_for(bad, "REP002", module_name="repro.core.pugz")
        assert len(found) == 2

    def test_out_of_scope_module_quiet(self):
        assert findings_for(_BROAD, "REP002", module_name="repro.robustness.campaign") == []

    def test_reraise_exempts(self):
        good = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception as exc:\n"
            "        raise RuntimeError('wrapped') from exc\n"
        )
        assert findings_for(good, "REP002", module_name="repro.deflate.inflate") == []

    def test_pragma_exempts(self):
        good = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:  # lint: allow-broad-except(outcome capture)\n"
            "        return None\n"
        )
        assert findings_for(good, "REP002", module_name="repro.deflate.inflate") == []

    def test_pragma_without_reason_does_not_exempt(self):
        bad = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:  # lint: allow-broad-except()\n"
            "        return None\n"
        )
        assert len(findings_for(bad, "REP002", module_name="repro.deflate.inflate")) == 1

    def test_narrow_except_quiet(self):
        good = (
            "from repro.errors import DeflateError\n"
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except DeflateError:\n"
            "        return None\n"
        )
        assert findings_for(good, "REP002", module_name="repro.deflate.inflate") == []


# ---------------------------------------------------------------------------
# REP003 — executor-bound callables must be module-level
# ---------------------------------------------------------------------------


class TestREP003PickleSafety:
    def test_fires_on_lambda(self):
        bad = "def f(executor, items):\n    return executor.map(lambda x: x + 1, items)\n"
        (f,) = findings_for(bad, "REP003")
        assert "lambda" in f.message

    def test_fires_on_constructor_receiver(self):
        bad = (
            "from repro.parallel import ProcessExecutor\n"
            "def f(items):\n"
            "    return ProcessExecutor(2).map_outcomes(lambda x: x, items)\n"
        )
        assert len(findings_for(bad, "REP003")) == 1

    def test_fires_on_closure(self):
        bad = (
            "def f(executor, items, k):\n"
            "    def add_k(x):\n"
            "        return x + k\n"
            "    return executor.map(add_k, items)\n"
        )
        (f,) = findings_for(bad, "REP003")
        assert "closure" in f.message

    def test_fires_on_bound_method(self):
        bad = (
            "class Driver:\n"
            "    def decode(self, x):\n"
            "        return x\n"
            "    def run(self, pool, items):\n"
            "        return pool.map(self.decode, items)\n"
        )
        (f,) = findings_for(bad, "REP003")
        assert "bound method" in f.message

    def test_quiet_on_module_level_function(self):
        good = (
            "def work(x):\n"
            "    return x * 2\n"
            "def f(executor, items):\n"
            "    return executor.map(work, items)\n"
        )
        assert findings_for(good, "REP003") == []

    def test_sort_key_lambdas_out_of_scope(self):
        # The documented scope boundary: key functions never cross a
        # process boundary (e.g. the LPT sort key in parallel.scheduler).
        good = "def f(costs):\n    return sorted(range(len(costs)), key=lambda i: -costs[i])\n"
        assert findings_for(good, "REP003") == []

    def test_hypothesis_strategy_map_out_of_scope(self):
        good = "def strat(st):\n    return st.lists(st.text()).map(lambda xs: ''.join(xs))\n"
        assert findings_for(good, "REP003") == []


# ---------------------------------------------------------------------------
# REP004 — no unseeded randomness
# ---------------------------------------------------------------------------


class TestREP004UnseededRandom:
    def test_fires_on_global_random(self):
        bad = "import random\ndef f():\n    return random.random()\n"
        (f,) = findings_for(bad, "REP004")
        assert "global" in f.message.lower()

    def test_fires_on_seedless_constructors(self):
        bad = (
            "import random\n"
            "import numpy as np\n"
            "def f():\n"
            "    a = random.Random()\n"
            "    b = np.random.default_rng()\n"
            "    return a, b\n"
        )
        assert len(findings_for(bad, "REP004")) == 2

    def test_fires_on_numpy_global_state(self):
        bad = "import numpy as np\ndef f(xs):\n    np.random.shuffle(xs)\n"
        assert len(findings_for(bad, "REP004")) == 1

    def test_quiet_on_seeded_instances(self):
        good = (
            "import random\n"
            "import numpy as np\n"
            "def f(seed):\n"
            "    rng = random.Random(seed)\n"
            "    gen = np.random.default_rng(seed)\n"
            "    return rng.random() + gen.random()\n"
        )
        assert findings_for(good, "REP004") == []

    def test_randomness_module_exempt(self):
        bad = "import random\ndef f():\n    return random.random()\n"
        assert findings_for(bad, "REP004", module_name="repro.data.randomness") == []


# ---------------------------------------------------------------------------
# REP005 — width masking in bitio/crc32/huffman
# ---------------------------------------------------------------------------


class TestREP005UnmaskedWidth:
    def test_fires_on_inplace_shift(self):
        bad = "def f(row):\n    row <<= 1\n    return row\n"
        (f,) = findings_for(bad, "REP005", module_name="repro.deflate.crc32")
        assert "<<=" in f.message

    def test_fires_on_compare_and_return(self):
        bad = (
            "def f(a, b, n):\n"
            "    if a == b << n:\n"
            "        return b << n\n"
        )
        assert len(findings_for(bad, "REP005", module_name="repro.deflate.bitio")) == 2

    def test_fires_on_attribute_store(self):
        bad = "def f(self, x, n):\n    self._buf = x << n\n"
        assert len(findings_for(bad, "REP005", module_name="repro.deflate.huffman")) == 1

    def test_quiet_when_masked_or_width_constant(self):
        good = (
            "def f(self, x, n):\n"
            "    self._buf = (x << n) & 0xFFFFFFFF\n"
            "    if x == (1 << n):\n"
            "        return (x << 1) & 0xFF\n"
            "    return 1 << n\n"
        )
        assert findings_for(good, "REP005", module_name="repro.deflate.bitio") == []

    def test_out_of_scope_module_quiet(self):
        bad = "def f(row):\n    row <<= 1\n    return row\n"
        assert findings_for(bad, "REP005", module_name="repro.core.pugz") == []


# ---------------------------------------------------------------------------
# REP006 — no mutable default arguments
# ---------------------------------------------------------------------------


class TestREP006MutableDefault:
    def test_fires_on_literal_and_constructor(self):
        bad = (
            "def f(out=[], cache={}, pool=set(), buf=bytearray()):\n"
            "    return out, cache, pool, buf\n"
        )
        assert len(findings_for(bad, "REP006")) == 4

    def test_fires_on_kwonly_default(self):
        bad = "def f(*, acc=[]):\n    return acc\n"
        assert len(findings_for(bad, "REP006")) == 1

    def test_quiet_on_none_and_immutables(self):
        good = (
            "def f(out=None, names=(), k=0, label=''):\n"
            "    return out or []\n"
        )
        assert findings_for(good, "REP006") == []


# ---------------------------------------------------------------------------
# REP007 — no module-level mutable state in parallel/robustness
# ---------------------------------------------------------------------------


class TestREP007ModuleState:
    def test_fires_on_dict_and_list(self):
        bad = "REGISTRY = {}\nQUEUE = []\n"
        found = findings_for(bad, "REP007", module_name="repro.parallel.executor")
        assert len(found) == 2

    def test_fires_on_star_built_list(self):
        bad = "SLOTS = [0] * 8\n"
        assert len(findings_for(bad, "REP007", module_name="repro.robustness.campaign")) == 1

    def test_quiet_on_immutable_and_proxy(self):
        good = (
            "from types import MappingProxyType\n"
            "NAMES = ('a', 'b')\n"
            "TABLE = MappingProxyType({'a': 1})\n"
            "LIMIT = 42\n"
            "__all__ = ['NAMES', 'TABLE', 'LIMIT']\n"
        )
        assert findings_for(good, "REP007", module_name="repro.robustness.injectors") == []

    def test_out_of_scope_package_quiet(self):
        bad = "REGISTRY = {}\n"
        assert findings_for(bad, "REP007", module_name="repro.deflate.huffman") == []

    def test_function_local_state_quiet(self):
        good = "def f():\n    acc = {}\n    return acc\n"
        assert findings_for(good, "REP007", module_name="repro.parallel.scheduler") == []


# ---------------------------------------------------------------------------
# REP008 — __init__ exports match __all__
# ---------------------------------------------------------------------------


class TestREP008ExportSync:
    def test_fires_on_missing_all_entry(self):
        bad = (
            "from repro.deflate.bitio import BitReader\n"
            "def helper():\n"
            "    pass\n"
            "__all__ = ['BitReader']\n"
        )
        (f,) = findings_for(bad, "REP008", module_name="repro.deflate",
                            relpath="repro/deflate/__init__.py")
        assert "helper" in f.message

    def test_fires_on_stale_all_entry(self):
        bad = "__all__ = ['gone']\n"
        (f,) = findings_for(bad, "REP008", module_name="repro.deflate",
                            relpath="repro/deflate/__init__.py")
        assert "gone" in f.message

    def test_fires_on_missing_all(self):
        bad = "from repro.deflate.bitio import BitReader\n"
        (f,) = findings_for(bad, "REP008", module_name="repro.deflate",
                            relpath="repro/deflate/__init__.py")
        assert "__all__" in f.message

    def test_quiet_when_in_sync(self):
        good = (
            "from repro.deflate.bitio import BitReader\n"
            "from repro._version import __version__\n"
            "_INTERNAL = 1\n"
            "__all__ = ['BitReader', '__version__']\n"
        )
        assert findings_for(good, "REP008", module_name="repro.deflate",
                            relpath="repro/deflate/__init__.py") == []

    def test_non_init_modules_ignored(self):
        bad = "def public_helper():\n    pass\n"
        assert findings_for(bad, "REP008", module_name="repro.deflate.bitio",
                            relpath="repro/deflate/bitio.py") == []


# ---------------------------------------------------------------------------
# REP013 — retry loops in the supervision layer must be bounded
# ---------------------------------------------------------------------------


class TestREP013BoundedRetry:
    BAD = (
        "def f(pool, fn, item):\n"
        "    while True:\n"
        "        try:\n"
        "            return pool.submit(fn, item).result()\n"
        "        except OSError:\n"
        "            pool = rebuild()\n"
    )

    def test_fires_on_unbounded_while_retry(self):
        (f,) = findings_for(self.BAD, "REP013", module_name="repro.parallel.foo")
        assert f.rule_id == "REP013"
        assert "attempt bound" in f.message
        assert f.line == 2

    def test_fires_in_robustness_package_too(self):
        (f,) = findings_for(self.BAD, "REP013", module_name="repro.robustness.foo")
        assert f.rule_id == "REP013"

    def test_quiet_when_budget_bounds_the_loop(self):
        good = (
            "def f(pool, fn, todo, submission_budget):\n"
            "    while todo and submission_budget > 0:\n"
            "        submission_budget -= 1\n"
            "        try:\n"
            "            return pool.submit(fn, todo[0]).result()\n"
            "        except OSError:\n"
            "            pool = rebuild()\n"
        )
        assert findings_for(good, "REP013", module_name="repro.parallel.foo") == []

    def test_quiet_when_attempt_compared_in_body(self):
        good = (
            "def f(call, max_retries):\n"
            "    attempt = 0\n"
            "    while True:\n"
            "        try:\n"
            "            return call()\n"
            "        except OSError:\n"
            "            attempt += 1\n"
            "            if attempt > max_retries:\n"
            "                break\n"
        )
        assert findings_for(good, "REP013", module_name="repro.parallel.foo") == []

    def test_for_loops_are_inherently_bounded(self):
        good = (
            "def f(call, n):\n"
            "    for _ in range(n):\n"
            "        try:\n"
            "            return call()\n"
            "        except OSError:\n"
            "            pass\n"
        )
        assert findings_for(good, "REP013", module_name="repro.parallel.foo") == []

    def test_reraising_handler_is_not_a_retry(self):
        good = (
            "def f(call):\n"
            "    while True:\n"
            "        try:\n"
            "            return call()\n"
            "        except OSError as exc:\n"
            "            raise RuntimeError('fatal') from exc\n"
        )
        assert findings_for(good, "REP013", module_name="repro.parallel.foo") == []

    def test_handler_in_nested_function_does_not_count(self):
        good = (
            "def f(call, flag):\n"
            "    while flag:\n"
            "        def helper():\n"
            "            try:\n"
            "                return call()\n"
            "            except OSError:\n"
            "                return None\n"
            "        flag = helper()\n"
        )
        assert findings_for(good, "REP013", module_name="repro.parallel.foo") == []

    def test_out_of_scope_packages_ignored(self):
        assert findings_for(self.BAD, "REP013", module_name="repro.deflate.foo") == []

    def test_pragma_suppresses_with_reason(self):
        waived = self.BAD.replace(
            "while True:",
            "while True:  # lint: allow-unbounded-retry(bounded by caller)",
        )
        assert findings_for(waived, "REP013", module_name="repro.parallel.foo") == []


# ---------------------------------------------------------------------------
# Cross-cutting: every rule has id/slug/summary and registers exactly once
# ---------------------------------------------------------------------------


def test_registry_is_complete():
    from repro.lint import all_rules

    ids = [cls.rule_id for cls in all_rules()]
    # REP017 was retired in favour of REP020 (same slug, stronger rule).
    expected = [f"REP{i:03d}" for i in range(1, 22) if i != 17]
    assert ids == expected
    assert len({cls.slug for cls in all_rules()}) == len(expected)
    assert all(cls.summary for cls in all_rules())


def test_select_and_ignore_subset():
    rules = resolve_rules(select=["REP001", "REP002"], ignore=["REP002"])
    assert [r.rule_id for r in rules] == ["REP001"]
