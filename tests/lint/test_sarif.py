"""SARIF output tests: schema validity, fingerprints, CLI integration.

The emitted log is validated against a vendored subset of the official
OASIS SARIF 2.1.0 schema (``tests/lint/data/sarif-2.1.0-subset.
schema.json``) — required fields and enums match the full schema, so a
log that fails the subset fails the real one.  Validation runs with
``jsonschema`` draft-07 semantics.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import Linter, resolve_rules
from repro.lint.sarif import FINGERPRINT_KEY, to_sarif

pytestmark = pytest.mark.lint

jsonschema = pytest.importorskip("jsonschema")

SCHEMA = json.loads(
    (Path(__file__).parent / "data" / "sarif-2.1.0-subset.schema.json")
    .read_text(encoding="utf-8")
)

ONE_FINDING = (
    "from repro.errors import SyncError\n"
    "def f():\n"
    "    raise SyncError('no block found')\n"
)


def validate(log: dict) -> None:
    jsonschema.validate(log, SCHEMA, cls=jsonschema.Draft7Validator)


@pytest.fixture()
def tree(tmp_path):
    pkg = tmp_path / "repro" / "somemod"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("__all__ = []\n")
    return pkg


def run_linter(tree, **kwargs) -> tuple:
    linter = Linter(rules=resolve_rules(), root=tree.parent.parent, **kwargs)
    return linter, linter.run([tree])


class TestSarifDocument:
    def test_clean_run_validates(self, tree):
        (tree / "mod.py").write_text("x = 1\n")
        linter, result = run_linter(tree)
        log = to_sarif(result, linter.rules)
        validate(log)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["invocations"][0]["executionSuccessful"]

    def test_findings_validate_and_carry_fingerprints(self, tree):
        (tree / "mod.py").write_text(ONE_FINDING)
        linter, result = run_linter(tree)
        log = to_sarif(result, linter.rules)
        validate(log)
        (res,) = [r for r in log["runs"][0]["results"]]
        assert res["ruleId"] == "REP001"
        finding = result.findings[0]
        assert res["partialFingerprints"][FINGERPRINT_KEY] == finding.fingerprint()
        region = res["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.col + 1

    def test_rule_metadata_covers_selected_rules(self, tree):
        (tree / "mod.py").write_text("x = 1\n")
        linter, result = run_linter(tree)
        log = to_sarif(result, linter.rules)
        validate(log)
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == sorted(ids)
        assert {
            "REP014", "REP015", "REP016",
            "REP018", "REP019", "REP020", "REP021",
        } <= set(ids)
        by_id = {r["id"]: r for r in rules}
        assert by_id["REP016"]["properties"]["pragma"] == (
            "# lint: allow-exec-unsafe(<reason>)"
        )
        assert by_id["REP014"]["help"]["text"]

    def test_rule_index_points_at_descriptor(self, tree):
        (tree / "mod.py").write_text(ONE_FINDING)
        linter, result = run_linter(tree)
        log = to_sarif(result, linter.rules)
        run = log["runs"][0]
        (res,) = run["results"]
        descriptor = run["tool"]["driver"]["rules"][res["ruleIndex"]]
        assert descriptor["id"] == res["ruleId"]

    def test_parse_error_becomes_notification(self, tree):
        (tree / "mod.py").write_text("def broken(:\n")
        linter, result = run_linter(tree)
        log = to_sarif(result, linter.rules)
        validate(log)
        inv = log["runs"][0]["invocations"][0]
        assert not inv["executionSuccessful"]
        (note,) = inv["toolExecutionNotifications"]
        assert note["level"] == "error"
        assert "mod.py" in note["message"]["text"]

    def test_baselined_findings_marked_unchanged(self, tree):
        from repro.lint import Baseline

        (tree / "mod.py").write_text(ONE_FINDING)
        linter, result = run_linter(tree)
        baseline = Baseline.from_findings(result.findings)
        linter, result = run_linter(tree, baseline=baseline)
        assert not result.findings and result.baselined
        log = to_sarif(result, linter.rules)
        validate(log)
        (res,) = log["runs"][0]["results"]
        assert res["baselineState"] == "unchanged"


class TestCliIntegration:
    def test_format_sarif_exit_codes(self, tree, capsys):
        (tree / "mod.py").write_text(ONE_FINDING)
        assert main(["lint", str(tree), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        validate(log)
        assert log["runs"][0]["results"][0]["ruleId"] == "REP001"

    def test_format_sarif_clean(self, tree, capsys):
        (tree / "mod.py").write_text("x = 1\n")
        assert main(["lint", str(tree), "--format", "sarif"]) == 0
        validate(json.loads(capsys.readouterr().out))

    def test_jobs_flag_matches_serial_output(self, tree, capsys):
        for i in range(4):
            (tree / f"mod{i}.py").write_text(ONE_FINDING)
        assert main(["lint", str(tree), "--format", "json"]) == 1
        serial = json.loads(capsys.readouterr().out)
        assert main(["lint", str(tree), "--format", "json", "--jobs", "2"]) == 1
        parallel = json.loads(capsys.readouterr().out)
        assert serial["findings"] == parallel["findings"]
        assert len(parallel["findings"]) == 4

    def test_summary_store_caches_and_is_reused(self, tree, tmp_path, capsys):
        (tree / "mod.py").write_text(
            "def expand(table, count):\n"
            "    return table[count]\n"
            "def decode(reader, table):\n"
            "    n = reader.read(7)\n"
            "    return expand(table, n)\n"
        )
        store = tmp_path / "summaries.json"
        args = ["lint", str(tree), "--select", "REP015",
                "--summary-store", str(store)]
        assert main(args) == 1
        capsys.readouterr()
        payload = json.loads(store.read_text())
        assert payload["project_hash"]
        before = store.read_text()
        assert main(args) == 1  # warm run: same findings from cached summaries
        capsys.readouterr()
        assert store.read_text() == before

    def test_explain_interprocedural_rules(self, capsys):
        for rule_id, marker in [
            ("REP014", "bit"),
            ("REP015", "taint"),
            ("REP016", "executor"),
            ("REP018", "shift"),
            ("REP019", "index"),
            ("REP020", "budget"),
            ("REP021", "magic"),
        ]:
            assert main(["lint", "--explain", rule_id]) == 0
            out = capsys.readouterr().out
            assert rule_id in out
            assert marker in out.lower()
            assert "suppress with" in out
