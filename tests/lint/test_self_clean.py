"""Tier-1 gate: the full rule set over ``src/repro`` must stay clean.

This is the enforcement half of the analyzer: any non-baselined finding
in the shipped tree fails the default test run, so the contracts the
rules encode (error context, decode-path exception hygiene, pickle
safety, seeded randomness, width masking, fork-safe module state,
export sync) cannot silently rot.  The shipped ``lint-baseline.json``
is empty — every rule is fully satisfied; keep it that way, or justify
any new baseline entry in docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.lint import Baseline, Linter, resolve_rules

pytestmark = pytest.mark.lint

SRC = Path(repro.__file__).parent
REPO_ROOT = SRC.parent.parent
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_source_tree_is_lint_clean():
    baseline = Baseline.load(BASELINE) if BASELINE.exists() else None
    result = Linter(rules=resolve_rules(), baseline=baseline,
                    root=REPO_ROOT).run([SRC])
    assert not result.internal_errors, result.internal_errors
    assert result.files_checked > 50  # the whole package was scanned
    details = "\n".join(f.format_text() for f in result.findings)
    assert not result.findings, f"new lint findings:\n{details}"


def test_shipped_baseline_is_small_and_justified():
    # Acceptance contract: empty, or at most 5 entries (each of which
    # must be justified in docs/STATIC_ANALYSIS.md).
    if not BASELINE.exists():
        pytest.skip("no baseline shipped (tree is clean without one)")
    baseline = Baseline.load(BASELINE)
    assert len(baseline) <= 5
