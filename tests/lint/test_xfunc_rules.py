"""Fixture tests for the interprocedural rules (REP014–REP016, REP020).

Every rule gets violation/compliant twins, a call-depth ≥ 2 case (the
whole point of the summary layer) and a recursion/SCC case proving the
bottom-up fixpoint converges rather than looping or crashing.  The
multi-module cases go through :func:`repro.lint.lint_sources`, which
builds the same :class:`~repro.lint.callgraph.Project` the engine
uses on disk.
"""

from __future__ import annotations

import pytest

from repro.lint import lint_source, lint_sources, resolve_rules
from repro.lint.summaries import compute_summaries

pytestmark = pytest.mark.lint


def findings_for(source, rule_id, module_name="repro.somemod", relpath="m.py"):
    return lint_source(
        source,
        module_name=module_name,
        relpath=relpath,
        rules=resolve_rules(select=[rule_id]),
    )


def findings_for_tree(sources, rule_id):
    return lint_sources(sources, rules=resolve_rules(select=[rule_id]))


# ---------------------------------------------------------------------------
# REP014 — cross-function unit confusion
# ---------------------------------------------------------------------------


class TestCrossUnitConfusion:
    def test_bit_value_into_byte_parameter(self):
        (f,) = findings_for("""
def split_chunk(start_byte):
    return start_byte // 2

def plan(reader):
    return split_chunk(reader.tell_bits())
""", "REP014")
        assert "bit-valued" in f.message
        assert "start_byte" in f.message

    def test_annotation_beats_name(self):
        (f,) = findings_for("""
from repro.units import ByteOffset

def advance(pos: ByteOffset):
    return pos + 1

def plan(reader):
    return advance(reader.tell_bits())
""", "REP014")
        assert "'pos'" in f.message

    def test_depth_two_through_helper_return(self):
        # The bit unit flows out of helper() via its summary's return
        # unit, then into the byte parameter — two resolved hops.
        (f,) = findings_for("""
def helper(reader):
    return reader.tell_bits()

def split_chunk(start_byte):
    return start_byte // 2

def plan(reader):
    return split_chunk(helper(reader))
""", "REP014")
        assert "split_chunk" in f.message

    def test_cross_module(self):
        (f,) = findings_for_tree({
            "pkg/low.py": """
def split_chunk(start_byte):
    return start_byte // 2
""",
            "pkg/high.py": """
from pkg.low import split_chunk

def plan(reader):
    return split_chunk(reader.tell_bits())
""",
        }, "REP014")
        assert f.path == "pkg/high.py"

    def test_converted_argument_is_clean(self):
        assert findings_for("""
def split_chunk(start_byte):
    return start_byte // 2

def plan(reader):
    return split_chunk(reader.tell_bits() >> 3)
""", "REP014") == []

    def test_matching_units_are_clean(self):
        assert findings_for("""
def resync(start_bit):
    return start_bit + 1

def plan(reader):
    return resync(reader.tell_bits())
""", "REP014") == []

    def test_recursive_helper_converges(self):
        (f,) = findings_for("""
def descend(start_bit, depth):
    if depth == 0:
        return start_bit
    return descend(start_bit, depth - 1)

def consume(nbytes):
    return nbytes * 2

def plan(reader):
    return consume(descend(reader.tell_bits(), 3))
""", "REP014")
        assert "nbytes" in f.message

    def test_pragma_suppresses(self):
        assert findings_for("""
def split_chunk(start_byte):
    return start_byte // 2

def plan(reader):
    return split_chunk(reader.tell_bits())  # lint: allow-cross-unit-confusion(legacy bit-addressed API)
""", "REP014") == []


# ---------------------------------------------------------------------------
# REP015 — cross-function decode taint
# ---------------------------------------------------------------------------


class TestCrossDecodeTaint:
    def test_taint_down_into_callee_sink(self):
        (f,) = findings_for("""
def expand(table, count):
    return table[count]

def decode(reader, table):
    n = reader.read(7)
    return expand(table, n)
""", "REP015")
        assert "'count'" in f.message
        assert "expand" in f.message

    def test_taint_down_depth_two(self):
        (f,) = findings_for("""
def inner(table, count):
    return table[count]

def middle(table, count):
    return inner(table, count)

def decode(reader, table):
    n = reader.read(7)
    return middle(table, n)
""", "REP015")
        assert "middle" in f.message  # reported at the boundary crossed

    def test_taint_up_from_helper_return(self):
        (f,) = findings_for("""
def read_count(reader):
    return reader.read(7)

def decode(reader, table):
    n = read_count(reader)
    return table[n]
""", "REP015")
        assert "read_count" in f.message

    def test_callee_validation_is_clean(self):
        assert findings_for("""
def expand(table, count):
    if count >= len(table):
        raise ValueError(count)
    return table[count]

def decode(reader, table):
    n = reader.read(7)
    return expand(table, n)
""", "REP015") == []

    def test_caller_validation_is_clean(self):
        assert findings_for("""
def expand(table, count):
    return table[count]

def decode(reader, table):
    n = reader.read(7)
    if n > 29:
        raise ValueError(n)
    return expand(table, n)
""", "REP015") == []

    def test_mask_sanitizes_across_return(self):
        assert findings_for("""
def read_count(reader):
    return reader.read(7) & 0x1F

def decode(reader, table):
    return table[read_count(reader)]
""", "REP015") == []

    def test_direct_local_sink_is_not_duplicated(self):
        # read-then-sink in one function is REP010's finding only.
        assert findings_for("""
def decode(reader, table):
    n = reader.read(7)
    return table[n]
""", "REP015") == []

    def test_cross_module(self):
        (f,) = findings_for_tree({
            "pkg/tables.py": """
def expand(table, count):
    return table[count]
""",
            "pkg/decoder.py": """
from pkg.tables import expand

def decode(reader, table):
    n = reader.read(7)
    return expand(table, n)
""",
        }, "REP015")
        assert f.path == "pkg/decoder.py"

    def test_mutual_recursion_converges(self):
        (f,) = findings_for("""
def walk(table, count, depth):
    if depth:
        return descend(table, count, depth - 1)
    return table[count]

def descend(table, count, depth):
    return walk(table, count, depth)

def decode(reader, table):
    n = reader.read(9)
    return walk(table, n, 2)
""", "REP015")
        assert "walk" in f.message


# ---------------------------------------------------------------------------
# REP016 — executor race/fork-safety
# ---------------------------------------------------------------------------


class TestExecSafety:
    def test_module_state_mutation_depth_two(self):
        (f,) = findings_for("""
_seen = {}

def _record(chunk):
    _seen[chunk] = 1

def _work(chunk):
    _record(chunk)
    return chunk

def run(executor, chunks):
    return executor.map_outcomes(_work, chunks)
""", "REP016")
        assert "_record" in f.message
        assert "_seen" in f.message

    def test_pure_worker_is_clean(self):
        assert findings_for("""
def _work(chunk):
    return chunk * 2

def run(executor, chunks):
    return executor.map_outcomes(_work, chunks)
""", "REP016") == []

    def test_lock_across_call(self):
        (f,) = findings_for("""
import threading

_lock = threading.Lock()

def _flush(batch):
    pass

def _work(batch):
    with _lock:
        _flush(batch)

def run(executor, batches):
    return executor.map(_work, batches)
""", "REP016")
        assert "lock" in f.message.lower()

    def test_aliased_lambda_submission(self):
        (f,) = findings_for("""
def run(executor, items):
    fn = lambda item: item * 2
    return executor.map(fn, items)
""", "REP016")
        assert "lambda" in f.message

    def test_closure_submission(self):
        (f,) = findings_for("""
def run(executor, items, scale):
    def work(item):
        return item * scale
    return executor.map(work, items)
""", "REP016")
        assert "scale" in f.message

    def test_cross_module_worker(self):
        (f,) = findings_for_tree({
            "pkg/state.py": """
_cache = []

def remember(x):
    _cache.append(x)
""",
            "pkg/work.py": """
from pkg.state import remember

def work(item):
    remember(item)
    return item
""",
            "pkg/drive.py": """
from pkg.work import work

def run(executor, items):
    return executor.map_outcomes(work, items)
""",
        }, "REP016")
        assert f.path == "pkg/drive.py"  # anchored at the submission site
        assert "remember" in f.message

    def test_pragma_suppresses(self):
        assert findings_for("""
_seen = {}

def _work(chunk):
    _seen[chunk] = 1
    return chunk

def run(executor, chunks):
    return executor.map_outcomes(_work, chunks)  # lint: allow-exec-unsafe(serial executor only in this path)
""", "REP016") == []


# ---------------------------------------------------------------------------
# REP020 — unbudgeted allocation (formerly REP017; now interval-aware)
# ---------------------------------------------------------------------------


class TestUnbudgetedAlloc:
    def test_in_loop_alloc_depth_two(self):
        (f,) = findings_for("""
def _emit(length):
    out = bytearray()
    while length > 0:
        out += bytes(length)
        length -= 1
    return out

def inflate_block(reader, length):
    return _emit(length)
""", "REP020")
        assert "bytes() with computed size" in f.message
        assert f.line == 5  # anchored at the allocation, not the call

    def test_budget_check_in_callee_is_clean(self):
        assert findings_for("""
def _emit(length, budget):
    out = bytearray()
    while length > 0:
        budget.check_output(length)
        out += bytes(length)
        length -= 1
    return out

def inflate_block(reader, length, budget):
    return _emit(length, budget)
""", "REP020") == []

    def test_budget_check_in_caller_absorbs_callee(self):
        assert findings_for("""
def _emit(length):
    out = bytearray()
    while length > 0:
        out += bytes(length)
        length -= 1
    return out

def inflate_block(reader, length, budget):
    budget.check_block(length)
    return _emit(length)
""", "REP020") == []

    def test_optional_budget_idiom_is_clean(self):
        # `if budget is not None:` marks both arms checked by design.
        assert findings_for("""
def inflate(reader, length, budget=None):
    out = bytearray()
    while length > 0:
        if budget is not None:
            budget.check_output(length)
        out += bytes(length)
        length -= 1
    return out
""", "REP020") == []

    def test_constant_size_is_clean(self):
        assert findings_for("""
def fill(n):
    out = []
    for _ in range(n):
        out.append(bytes(65536))
    return out
""", "REP020") == []

    def test_alloc_outside_loop_is_clean(self):
        assert findings_for("""
def make(n):
    return bytes(n)
""", "REP020") == []

    def test_sequence_repeat_counts(self):
        (f,) = findings_for("""
def pad(reader, n):
    out = bytearray()
    while n > 0:
        out += b"?" * n
        n -= 1
    return out
""", "REP020")
        assert "sequence repeat" in f.message

    def test_recursive_alloc_converges(self):
        (f,) = findings_for("""
def grow(n):
    out = bytearray()
    while n:
        out += bytes(n)
        n = shrink(n)
    return out

def shrink(n):
    if n > 2:
        return grow(n - 1) and 0
    return 0
""", "REP020")
        assert "bytes() with computed size" in f.message

    def test_pragma_suppresses(self):
        assert findings_for("""
def pad(n):
    out = bytearray()
    while n > 0:
        out += bytes(n)  # lint: allow-unbudgeted-alloc(n is <= 258 by the caller's contract)
        n -= 1
    return out
""", "REP020") == []


# ---------------------------------------------------------------------------
# summary stability (the summary-store soundness contract)
# ---------------------------------------------------------------------------


class TestSummaryStability:
    SOURCES = {
        "pkg/low.py": """
def read_count(reader):
    return reader.read(7)

def expand(table, count):
    return table[count]
""",
        "pkg/high.py": """
from pkg.low import expand, read_count

def decode(reader, table):
    return expand(table, read_count(reader))

def even(n):
    return n == 0 or odd(n - 1)

def odd(n):
    return n != 0 and even(n - 1)
""",
    }

    def _project(self):
        import ast
        from pathlib import Path

        from repro.lint.callgraph import Project
        from repro.lint.module import ModuleInfo

        return Project(
            ModuleInfo(
                path=Path("/syn/" + rel),
                relpath=rel,
                name=rel[:-3].replace("/", "."),
                source=src,
                tree=ast.parse(src),
                pragmas={},
            )
            for rel, src in self.SOURCES.items()
        )

    def test_recomputation_is_deterministic(self):
        a = compute_summaries(self._project())
        b = compute_summaries(self._project())
        assert {q: s.to_dict() for q, s in a.items()} == \
               {q: s.to_dict() for q, s in b.items()}

    def test_summary_facts(self):
        summaries = compute_summaries(self._project())
        low = summaries["pkg.low.read_count"]
        assert low.returns_fresh_taint
        sink = summaries["pkg.low.expand"]
        assert "count" in sink.taint_sink_params

    def test_store_round_trip(self, tmp_path):
        from repro.lint.summaries import SummaryStore

        project = self._project()
        summaries = compute_summaries(project)
        store = SummaryStore(tmp_path / "summaries.json")
        store.save(project.source_hash(), summaries)
        loaded = store.load(project.source_hash())
        assert loaded is not None
        assert {q: s.to_dict() for q, s in loaded.items()} == \
               {q: s.to_dict() for q, s in summaries.items()}
        assert store.load("0" * 40) is None  # stale hash misses
