"""Fault-injection campaigns: the engine never crashes, only errors.

The quick class runs in tier 1; the full 432-case grid is marked
``robustness`` and runs via ``make fuzz``.
"""

import json

import pytest

from repro.robustness import default_corpora, run_campaign
from repro.robustness.campaign import OUTCOMES, build_cases
from repro.robustness.injectors import ALL_INJECTOR_NAMES


class TestQuickCampaign:
    """A 2-corpus, 1-seed slice — fast enough for tier 1."""

    @pytest.fixture(scope="class")
    def quick_report(self):
        corpora = default_corpora()
        small = {k: corpora[k] for k in ("tiny", "text-repetitive")}
        return run_campaign(small, n_seeds=2, max_resync_search_bits=4000)

    def test_no_crashes(self, quick_report):
        assert quick_report.crashes == []

    def test_outcomes_are_classified(self, quick_report):
        assert quick_report.cases
        for case in quick_report.cases:
            assert case.outcome in OUTCOMES

    def test_json_round_trips(self, quick_report):
        doc = json.loads(quick_report.to_json())
        assert doc["n_cases"] == len(quick_report.cases)
        assert sum(doc["counts"].values()) == doc["n_cases"]
        assert len(doc["cases"]) == doc["n_cases"]

    def test_summary_mentions_case_count(self, quick_report):
        assert str(len(quick_report.cases)) in quick_report.summary()


def test_build_cases_grid_is_deterministic():
    a = build_cases(["x", "y"], n_seeds=3)
    b = build_cases(["x", "y"], n_seeds=3)
    assert a == b
    assert len(a) == 2 * len(ALL_INJECTOR_NAMES) * 3


def test_default_corpora_decompress_cleanly():
    import gzip

    for name, (plain, gz) in default_corpora().items():
        assert gzip.decompress(gz) == plain, name


@pytest.mark.robustness
class TestFullCampaign:
    """The acceptance-criteria campaign: >= 200 seeded cases."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign()  # 6 corpora x 8 injectors x 9 seeds = 432

    def test_at_least_200_cases(self, report):
        assert len(report.cases) >= 200

    def test_zero_crashes(self, report):
        crashes = [(c.case_id, c.error_type, c.error_context) for c in report.crashes]
        assert crashes == []

    def test_every_trailer_tamper_caught_by_verify(self, report):
        for case in report.cases:
            if case.injector != "tamper_trailer":
                continue
            if case.outcome in ("intact", "silent-corruption"):
                assert case.verify_caught, case.case_id

    def test_silent_corruption_always_caught_by_verify(self, report):
        for case in report.cases:
            if case.outcome == "silent-corruption":
                assert case.verify_caught, case.case_id

    def test_salvaged_cases_returned_output(self, report):
        salvaged = [c for c in report.cases if c.outcome == "salvaged"]
        assert salvaged, "campaign produced no salvage cases at all"
        for case in salvaged:
            assert case.recovered_bytes > 0, case.case_id

    def test_clean_errors_carry_context(self, report):
        contextful = 0
        for case in report.cases:
            if case.outcome == "clean-error" and case.error_context:
                contextful += 1
        assert contextful > 0
