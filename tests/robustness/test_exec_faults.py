"""Execution-fault injectors and the pugz degradation ladder.

These are the injectors that leave the bytes pristine and sabotage the
*executor* instead: supervision must turn a hung or dead worker into a
recovered, byte-identical run.  Also covers the ladder's serial rung
and multi-member salvage with a corrupt member between sync points.
"""

from __future__ import annotations

import gzip
import random

import pytest

from repro.core.pugz import pugz_decompress
from repro.parallel import SupervisionPolicy, ThreadExecutor
from repro.robustness import (
    ALL_INJECTOR_NAMES,
    EXECUTION_INJECTOR_NAMES,
    ExecutionFault,
    FaultCase,
    INJECTOR_NAMES,
    SabotageExecutor,
    inject,
)
from repro.robustness.exec_faults import WorkerSabotage


def _corpus(n=40_000, seed=7):
    """pigz-style multiblock stream: chunkable, so pass 1 really fans
    out (a single-block gzip collapses to one chunk and the sabotage
    would hit the inline no-preemption path instead of the pool)."""
    from repro.core.pigz import pigz_compress

    rng = random.Random(seed)
    plain = bytes(rng.choice(b"ACGTN\n") for _ in range(n))
    return plain, pigz_compress(plain, level=6, chunk_size=4096)


class TestRegistry:
    def test_execution_names_registered(self):
        assert EXECUTION_INJECTOR_NAMES == ("slow_worker", "crashing_worker")
        for name in EXECUTION_INJECTOR_NAMES:
            assert name in ALL_INJECTOR_NAMES
            assert name not in INJECTOR_NAMES

    @pytest.mark.parametrize("name", EXECUTION_INJECTOR_NAMES)
    def test_inject_leaves_bytes_alone(self, name):
        _, gz = _corpus()
        assert inject(FaultCase("c", name, 5), gz) == gz

    def test_from_injector_rejects_unknown(self):
        with pytest.raises(ValueError):
            ExecutionFault.from_injector("unknown_fault", 1)

    def test_fault_is_seeded(self):
        a = ExecutionFault.from_injector("crashing_worker", 3)
        b = ExecutionFault.from_injector("crashing_worker", 3)
        assert a == b


class TestSabotageExecutor:
    def test_fault_fires_exactly_once(self):
        fault = ExecutionFault("crash", seed=0)
        ex = SabotageExecutor(ThreadExecutor(2), fault)
        with pytest.raises(WorkerSabotage):
            ex.map(lambda x: x, [1, 2, 3])  # first map: sabotage fires
        assert ex.map(lambda x: x, [1, 2, 3]) == [1, 2, 3]  # then clean

    def test_rejects_process_inner(self):
        from repro.parallel import ProcessExecutor

        with pytest.raises(ValueError):
            SabotageExecutor(ProcessExecutor(2), ExecutionFault("crash", 0))


class TestSupervisedPugz:
    @pytest.mark.parametrize("kind", EXECUTION_INJECTOR_NAMES)
    def test_sabotaged_run_recovers_byte_identical(self, kind):
        plain, gz = _corpus()
        fault = ExecutionFault.from_injector(kind, seed=1, sleep_s=0.5)
        executor = SabotageExecutor(ThreadExecutor(2), fault)
        policy = SupervisionPolicy(deadline_s=0.15, max_retries=2, backoff_base_s=0.01)
        out, rep = pugz_decompress(
            gz, executor=executor, n_chunks=2, return_report=True, supervision=policy
        )
        assert out == plain
        assert rep.chunk_details  # per-chunk accounting present
        assert max(d.retries for d in rep.chunk_details) >= 1

    def test_crash_without_supervision_degrades_to_serial(self):
        """With no retries available, the ladder's serial rung still
        produces an exact result (it is exact, so raise mode uses it)."""
        plain, gz = _corpus()
        fault = ExecutionFault.from_injector("crashing_worker", seed=1)
        executor = SabotageExecutor(ThreadExecutor(2), fault)
        out, rep = pugz_decompress(gz, executor=executor, n_chunks=2, return_report=True)
        assert out == plain
        assert any(d.degraded_to == "serial" for d in rep.chunk_details)

    def test_shorthand_kwargs_build_policy(self):
        plain, gz = _corpus()
        out = pugz_decompress(gz, n_chunks=2, deadline_s=30.0, max_retries=1)
        assert out == plain

    def test_supervision_and_shorthand_are_exclusive(self):
        _, gz = _corpus()
        with pytest.raises(ValueError):
            pugz_decompress(
                gz,
                deadline_s=1.0,
                supervision=SupervisionPolicy(max_retries=1),
            )

    def test_clean_run_chunk_details_all_ok(self):
        plain, gz = _corpus()
        out, rep = pugz_decompress(gz, n_chunks=2, return_report=True)
        assert out == plain
        assert [d.status for d in rep.chunk_details] == ["ok"] * len(rep.chunks)
        assert all(d.degraded_to is None and d.retries == 0 for d in rep.chunk_details)


class TestMultiMemberSalvage:
    def test_corrupt_member_between_sync_points(self):
        """Three members; the middle one's payload is wrecked.  Recover
        mode must keep member 1 exact, bound the damage inside member 2,
        and pick member 3 back up at its header (a guaranteed sync
        point)."""
        rng = random.Random(11)
        parts = [
            bytes(rng.choice(b"ACGT") for _ in range(20_000)) for _ in range(3)
        ]
        members = [gzip.compress(p, 6, mtime=0) for p in parts]
        damaged = bytearray(b"".join(members))
        # Stomp the middle of member 2's payload, leaving its header
        # (the sync point before it) and member 3's header intact.
        mid_start = len(members[0])
        stomp_at = mid_start + len(members[1]) // 2
        for i in range(stomp_at, stomp_at + 16):
            damaged[i] ^= 0xFF
        out, rep = pugz_decompress(
            bytes(damaged),
            n_chunks=2,
            on_error="recover",
            verify=True,  # payload stomps can decode to valid garbage;
            return_report=True,  # only the CRC sees that (ROBUSTNESS.md)
        )
        # Member 1 is untouched and must come back exact.
        assert out[: len(parts[0])] == parts[0]
        # Member 3 sits after the damage; its content must be present.
        assert parts[2] in out
        # The damage itself is accounted for, not silently absorbed.
        assert rep.holes or rep.verify_failures or rep.unresolved_markers
        assert not rep.is_complete
