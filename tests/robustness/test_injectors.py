"""Seeded fault injectors: deterministic, bounded, input-preserving."""

import random

import pytest

from repro.robustness import FaultCase, INJECTOR_NAMES, inject
from repro.robustness.injectors import (
    corrupt_bytes,
    flip_bit,
    mangle_header,
    splice_members,
    tamper_trailer,
    truncate,
)

DATA = bytes(range(256)) * 4


def rng(seed=1):
    return random.Random(seed)


class TestDeterminism:
    @pytest.mark.parametrize("name", INJECTOR_NAMES)
    def test_same_seed_same_fault(self, name):
        case = FaultCase("c", name, 42)
        assert inject(case, DATA) == inject(case, DATA)

    @pytest.mark.parametrize("name", INJECTOR_NAMES)
    def test_input_not_mutated(self, name):
        buf = bytearray(DATA)
        inject(FaultCase("c", name, 42), bytes(buf))
        assert bytes(buf) == DATA

    def test_different_seeds_differ_somewhere(self):
        outs = {inject(FaultCase("c", "flip_bit", s), DATA) for s in range(20)}
        assert len(outs) > 1


class TestShapes:
    def test_flip_bit_changes_exactly_one_bit(self):
        out = flip_bit(DATA, rng())
        assert len(out) == len(DATA)
        diff = [a ^ b for a, b in zip(out, DATA) if a != b]
        assert len(diff) == 1
        assert bin(diff[0]).count("1") == 1

    def test_corrupt_bytes_preserves_length(self):
        out = corrupt_bytes(DATA, rng())
        assert len(out) == len(DATA)
        assert out != DATA or True  # may coincide; length is the contract

    def test_truncate_shortens(self):
        out = truncate(DATA, rng())
        assert len(out) < len(DATA)
        assert DATA.startswith(out)

    def test_tamper_trailer_touches_only_last_8(self):
        out = tamper_trailer(DATA, rng())
        assert out[:-8] == DATA[:-8]
        assert out[-8:] != DATA[-8:]  # XOR with non-zero guarantees change

    def test_mangle_header_touches_only_first_10(self):
        out = mangle_header(DATA, rng())
        assert out[10:] == DATA[10:]
        assert out[:10] != DATA[:10]

    def test_splice_members_contains_both_copies(self):
        out = splice_members(DATA, rng())
        assert out.startswith(DATA)
        assert out.endswith(DATA)
        assert len(out) >= 2 * len(DATA)

    @pytest.mark.parametrize("name", INJECTOR_NAMES)
    def test_empty_input_survives(self, name):
        out = inject(FaultCase("c", name, 1), b"")
        assert isinstance(out, bytes)


def test_unknown_injector_rejected():
    with pytest.raises(ValueError, match="unknown injector"):
        inject(FaultCase("c", "not_a_fault", 1), DATA)


def test_case_id_format():
    assert FaultCase("fastq", "flip_bit", 9).case_id == "fastq/flip_bit/9"
