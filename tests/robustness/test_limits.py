"""Resource budgets: the zip-bomb defense fires early and structured.

The acceptance bar: on a >=1000x-expansion stream the engine raises
``ResourceLimitError`` carrying ``bit_offset`` / ``chunk_index`` /
``stage`` *before* resident output exceeds the budget — measured here
with tracemalloc, not trusted from the docstring.
"""

from __future__ import annotations

import gzip
import pickle
import tracemalloc

import pytest

from repro.core.pugz import pugz_decompress
from repro.deflate.inflate import inflate
from repro.errors import ReproError, ResourceLimitError
from repro.robustness.limits import UNLIMITED_CAP, ResourceBudget

#: 4 MiB of zeros -> ~4 KiB compressed: expansion well past 1000x.
BOMB_PLAIN_SIZE = 4 << 20
BOMB = gzip.compress(b"\x00" * BOMB_PLAIN_SIZE, 9, mtime=0)


def test_bomb_fixture_is_actually_a_bomb():
    assert BOMB_PLAIN_SIZE / len(BOMB) >= 1000


class TestBudgetObject:
    def test_unlimited_and_caps(self):
        b = ResourceBudget()
        assert b.unlimited
        assert b.output_cap() == UNLIMITED_CAP
        assert b.marker_symbol_cap() == UNLIMITED_CAP

    def test_marker_symbol_cap_takes_tighter_bound(self):
        assert ResourceBudget(max_marker_buffer_bytes=400).marker_symbol_cap() == 100
        assert (
            ResourceBudget(max_output_bytes=50, max_marker_buffer_bytes=400)
            .marker_symbol_cap() == 50
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_output_bytes": 0},
            {"max_output_bytes": -5},
            {"max_expansion_ratio": 0},
            {"max_marker_buffer_bytes": -1},
            {"expansion_grace_bytes": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ResourceBudget(**kwargs)

    def test_check_block_passes_under_limits(self):
        b = ResourceBudget(max_output_bytes=1000, max_expansion_ratio=10.0)
        b.check_block(500, 8 * 100, stage="inflate", bit_offset=0)

    def test_check_block_expansion_grace(self):
        b = ResourceBudget(max_expansion_ratio=2.0, expansion_grace_bytes=65536)
        # 1000x ratio but below the grace threshold: not enforced yet.
        b.check_block(10_000, 80, stage="inflate", bit_offset=0)
        with pytest.raises(ResourceLimitError) as exc:
            b.check_block(100_000, 80, stage="inflate", bit_offset=160)
        assert exc.value.limit == "expansion_ratio"

    def test_budget_is_picklable(self):
        b = ResourceBudget(max_output_bytes=1 << 20, max_expansion_ratio=100.0)
        assert pickle.loads(pickle.dumps(b)) == b


class TestResourceLimitError:
    def test_pickle_round_trip_keeps_all_context(self):
        err = ResourceLimitError(
            "over budget",
            limit="output_bytes",
            bit_offset=8319,
            chunk_index=2,
            stage="inflate",
        )
        e2 = pickle.loads(pickle.dumps(err))
        assert isinstance(e2, ResourceLimitError)
        assert isinstance(e2, ReproError)
        assert e2.limit == "output_bytes"
        assert e2.bit_offset == 8319
        assert e2.chunk_index == 2
        assert e2.stage == "inflate"
        assert "over budget" in str(e2)


class TestZipBombDefense:
    def test_sequential_inflate_stops_at_cap(self):
        budget = ResourceBudget(max_output_bytes=256 << 10)
        with pytest.raises(ResourceLimitError) as exc:
            inflate(BOMB, start_bit=8 * 10, budget=budget)
        err = exc.value
        assert err.limit == "output_bytes"
        assert err.bit_offset is not None
        assert err.stage == "inflate"

    def test_pugz_error_carries_full_context(self):
        budget = ResourceBudget(max_output_bytes=256 << 10)
        with pytest.raises(ResourceLimitError) as exc:
            pugz_decompress(BOMB, n_chunks=2, budget=budget)
        err = exc.value
        assert err.limit in ("output_bytes", "marker_symbols")
        assert err.bit_offset is not None
        assert err.chunk_index is not None
        assert err.stage in ("inflate", "marker_inflate", "pass1")

    def test_fires_before_resident_output_exceeds_budget(self):
        """The point of the guard: memory stays near the cap, nowhere
        near the 4 MiB the bomb would decompress to."""
        budget = ResourceBudget(max_output_bytes=128 << 10)
        tracemalloc.start()
        try:
            with pytest.raises(ResourceLimitError):
                pugz_decompress(BOMB, n_chunks=1, budget=budget)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # Cap 128 KiB; allow decoder working-set slack but stay far
        # below the full plaintext.
        assert peak < BOMB_PLAIN_SIZE // 2, f"peak {peak} bytes"

    def test_expansion_ratio_limit_fires(self):
        budget = ResourceBudget(max_expansion_ratio=50.0)
        with pytest.raises(ResourceLimitError) as exc:
            pugz_decompress(BOMB, n_chunks=1, budget=budget)
        assert exc.value.limit == "expansion_ratio"

    def test_marker_buffer_limit_fires_in_parallel_pass(self):
        # The single-block BOMB decodes its lone chunk with known
        # context (plain inflate); marker buffers only exist for later
        # chunks, so use a pigz-style multi-block stream where chunk 1
        # must marker-decode.
        from repro.core.pigz import pigz_compress

        gz = pigz_compress(b"\x00" * (1 << 20), level=6, chunk_size=65536)
        budget = ResourceBudget(max_marker_buffer_bytes=64 << 10)
        with pytest.raises(ResourceLimitError) as exc:
            pugz_decompress(gz, n_chunks=2, budget=budget)
        assert exc.value.limit in ("marker_symbols", "marker_buffer_bytes")

    def test_generous_budget_is_byte_identical(self):
        budget = ResourceBudget(
            max_output_bytes=16 << 20, max_expansion_ratio=1e6
        )
        assert pugz_decompress(BOMB, n_chunks=2, budget=budget) == gzip.decompress(BOMB)

    def test_unlimited_budget_is_a_no_op(self):
        data = b"The quick brown fox. " * 500
        gz = gzip.compress(data, 6, mtime=0)
        assert pugz_decompress(gz, n_chunks=2, budget=ResourceBudget()) == data
