"""Analysis layers: window counting, origin tracking, token stats."""

import numpy as np
import pytest

from repro.analysis import (
    UndeterminedWindowCounter,
    context_types_for_offset,
    literal_positions,
    literal_rate_by_window,
    offset_histogram,
    origin_counts_by_type,
    payload_token_stats,
    tokens_of_zlib,
    undetermined_window_series,
)
from repro.analysis.origins import TYPE_ORDER
from repro.core.marker import MARKER_BASE
from repro.data import CHAR_TYPES, classify_fastq_bytes, random_dna
from repro.deflate.inflate import inflate
from tests.conftest import zlib_raw


class TestTokenStats:
    def test_tokens_of_zlib_expand_length(self, dna_100k):
        tokens = tokens_of_zlib(dna_100k, 6)
        assert tokens.stats().output_length == len(dna_100k)

    def test_paper_oa_magnitude_on_dna(self):
        """Section IV-C: o_a ~ 3602 on random DNA at default level.

        We assert the order of magnitude (the exact value depends on
        the zlib build's tie-breaking)."""
        dna = random_dna(1_000_000, seed=42)
        stats = payload_token_stats(zlib_raw(dna, 6), skip_blocks=1).stats
        assert 1000 < stats.mean_offset < 9000

    def test_level9_offsets_larger_than_level6(self):
        """Section V-D: gzip -9 produces higher average offsets."""
        dna = random_dna(600_000, seed=43)
        s6 = payload_token_stats(zlib_raw(dna, 6), skip_blocks=1).stats
        s9 = payload_token_stats(zlib_raw(dna, 9), skip_blocks=1).stats
        assert s9.mean_offset > s6.mean_offset

    def test_mean_length_near_paper_la(self):
        """Paper: l_a = 7.6 on random DNA at default level."""
        dna = random_dna(600_000, seed=44)
        stats = payload_token_stats(zlib_raw(dna, 6), skip_blocks=1).stats
        assert 5.0 < stats.mean_length < 11.0

    def test_skip_blocks_changes_window(self, fastq_medium):
        raw = zlib_raw(fastq_medium, 6)
        full = payload_token_stats(raw)
        tail = payload_token_stats(raw, skip_blocks=2)
        assert tail.stats.output_length < full.stats.output_length

    def test_offset_histogram(self, dna_100k):
        tokens = tokens_of_zlib(dna_100k, 6)
        counts, edges = offset_histogram(tokens, bins=16)
        assert counts.sum() == tokens.stats().num_matches
        assert len(edges) == 17

    def test_literal_positions_sorted_and_bounded(self, dna_100k):
        tokens = tokens_of_zlib(dna_100k, 6)
        pos = literal_positions(tokens)
        assert (np.diff(pos) > 0).all()
        assert pos[-1] < len(dna_100k)

    def test_literal_rate_by_window_first_window_highest(self, dna_100k):
        """History is empty at the start: window 0 has the most literals."""
        tokens = tokens_of_zlib(dna_100k, 6)
        rates = literal_rate_by_window(tokens, window=16384)
        assert rates[0] == rates.max()
        assert rates.min() >= 0.0


class TestWindowCounter:
    def test_counts_match_direct_computation(self):
        counter = UndeterminedWindowCounter(window_size=10)
        syms = [65] * 25
        syms[3] = MARKER_BASE + 1
        syms[12] = MARKER_BASE + 2
        syms[13] = MARKER_BASE + 3
        counter(syms[:15], 0)
        counter(syms[15:], 15)
        fr = counter.fractions()
        assert fr.tolist() == [0.1, 0.2, 0.0]
        assert counter.total_symbols == 25

    def test_partial_last_window_normalised(self):
        counter = UndeterminedWindowCounter(window_size=10)
        counter([MARKER_BASE] * 5, 0)
        assert counter.fractions().tolist() == [1.0]

    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            UndeterminedWindowCounter(0)

    def test_series_from_stream_matches_full_decode(self, fastq_medium):
        """Streaming window series == series computed from a full
        marker decode."""
        from repro.core.marker_inflate import marker_inflate

        raw = zlib_raw(fastq_medium, 6)
        full = inflate(raw)
        b = full.blocks[1]
        series = undetermined_window_series(raw, b.start_bit, window_size=5000)

        res = marker_inflate(raw, start_bit=b.start_bit)
        syms = res.symbols
        expected = []
        for i in range(0, len(syms), 5000):
            win = syms[i : i + 5000]
            expected.append(float((win >= MARKER_BASE).mean()))
        assert np.allclose(series.fractions, expected)
        assert series.total == len(syms)

    def test_vanish_index(self):
        counter = UndeterminedWindowCounter(window_size=4)
        counter([MARKER_BASE, 0, 0, 0] + [0] * 8, 0)
        fr = counter.fractions()
        nz = np.flatnonzero(fr > 0)
        assert nz.tolist() == [0]


class TestOrigins:
    def test_counts_localise_markers(self):
        context_types = np.zeros(32768, dtype=np.uint8)
        context_types[100] = CHAR_TYPES["dna"]
        context_types[200] = CHAR_TYPES["quality"]
        syms = np.full(70000, 65, dtype=np.int32)
        syms[5] = MARKER_BASE + 100      # dna marker, window 0
        syms[40000] = MARKER_BASE + 200  # quality marker, window 1
        series = origin_counts_by_type(syms, context_types)
        assert series.counts[0, TYPE_ORDER.index("dna")] == 1
        assert series.counts[1, TYPE_ORDER.index("quality")] == 1
        assert series.counts.sum() == 2

    def test_totals_by_type(self):
        context_types = np.full(32768, CHAR_TYPES["header"], dtype=np.uint8)
        syms = np.array([MARKER_BASE + i for i in range(10)], dtype=np.int32)
        series = origin_counts_by_type(syms, context_types)
        assert series.totals_by_type()["header"] == 10

    def test_last_window_with_type(self):
        context_types = np.full(32768, CHAR_TYPES["dna"], dtype=np.uint8)
        syms = np.zeros(100_000, dtype=np.int32)
        syms[80_000] = MARKER_BASE + 5
        series = origin_counts_by_type(syms, context_types)
        assert series.last_window_with_type("dna") == 80_000 // 32768
        assert series.last_window_with_type("quality") is None

    def test_wrong_context_size(self):
        with pytest.raises(ValueError):
            origin_counts_by_type(np.zeros(1, dtype=np.int32), np.zeros(5))

    def test_context_types_for_offset(self, fastq_medium):
        types = context_types_for_offset(fastq_medium, 100_000)
        expected = classify_fastq_bytes(fastq_medium[:100_000])[-32768:]
        assert (types == expected).all()

    def test_context_types_needs_32k(self):
        with pytest.raises(ValueError):
            context_types_for_offset(b"short", 4)

    def test_end_to_end_origin_tracking(self, fastq_medium):
        """Markers' origin types computed via the marker decode agree
        with ground truth: each marker's origin byte type equals the
        classified type of the true context position."""
        from repro.core.marker_inflate import marker_inflate

        raw = zlib_raw(fastq_medium, 6)
        full = inflate(raw)
        b = full.blocks[1]
        res = marker_inflate(raw, start_bit=b.start_bit)
        ctx_types = context_types_for_offset(fastq_medium, b.out_start)
        series = origin_counts_by_type(res.symbols, ctx_types)
        # Totals must equal the marker count.
        assert series.counts.sum() == int((res.symbols >= MARKER_BASE).sum())
