"""The public API surface: every ``__all__`` name exists and imports.

Guards against export drift as modules evolve — a release-quality
package must not advertise names it cannot deliver.
"""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.deflate",
    "repro.core",
    "repro.models",
    "repro.data",
    "repro.analysis",
    "repro.perf",
    "repro.parallel",
    "repro.bgzf",
    "repro.index",
    "repro.io",
    "repro.pipeline",
    "repro.robustness",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_resolves(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), f"{name} lacks __all__"
    for sym in mod.__all__:
        assert hasattr(mod, sym), f"{name}.{sym} in __all__ but missing"


def test_every_submodule_imports():
    """Import every module in the tree (catches syntax/import rot in
    modules the test suite happens not to touch)."""
    failures = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        if not hasattr(pkg, "__path__"):
            continue
        for info in pkgutil.iter_modules(pkg.__path__):
            full = f"{pkg_name}.{info.name}"
            try:
                importlib.import_module(full)
            except Exception as exc:  # pragma: no cover
                failures.append((full, repr(exc)))
    assert not failures


def test_version_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_error_hierarchy():
    from repro import errors

    assert issubclass(errors.DeflateError, errors.ReproError)
    for name in (
        "BitstreamError",
        "HuffmanError",
        "BlockHeaderError",
        "BackrefError",
        "AsciiCheckError",
        "BlockSizeError",
    ):
        assert issubclass(getattr(errors, name), errors.DeflateError)
    for name in ("GzipFormatError", "SyncError", "RandomAccessError"):
        assert issubclass(getattr(errors, name), errors.ReproError)
        assert not issubclass(getattr(errors, name), errors.DeflateError)
