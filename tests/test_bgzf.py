"""BGZF blocked-gzip format: framing, random access, parallel decode."""

import gzip as stdlib_gzip
import struct

import pytest

from repro.bgzf import (
    BGZF_EOF,
    MAX_BLOCK_INPUT,
    BgzfReader,
    bgzf_compress,
    bgzf_decompress,
    bgzf_decompress_parallel,
    make_virtual_offset,
    read_block,
    scan_blocks,
    split_virtual_offset,
)
from repro.errors import GzipFormatError, RandomAccessError


@pytest.fixture(scope="module")
def bgzf_file(fastq_small):
    return fastq_small, bgzf_compress(fastq_small, 6)


class TestFormat:
    def test_round_trip(self, bgzf_file):
        text, bg = bgzf_file
        assert bgzf_decompress(bg) == text

    def test_stdlib_reads_bgzf(self, bgzf_file):
        """BGZF is plain multi-member gzip to any gzip reader."""
        text, bg = bgzf_file
        assert stdlib_gzip.decompress(bg) == text

    def test_eof_sentinel_present(self, bgzf_file):
        _, bg = bgzf_file
        assert bg.endswith(BGZF_EOF)

    def test_eof_sentinel_is_itself_valid_bgzf(self):
        blocks = scan_blocks(BGZF_EOF)
        assert len(blocks) == 1 and blocks[0].is_eof

    def test_empty_input(self):
        bg = bgzf_compress(b"")
        assert bg == BGZF_EOF
        assert bgzf_decompress(bg) == b""

    def test_block_size_limits(self, fastq_small):
        bg = bgzf_compress(fastq_small, 6, block_input=1000)
        blocks = scan_blocks(bg)
        assert all(b.usize <= 1000 for b in blocks)
        assert all(b.csize <= 65536 for b in blocks)

    def test_invalid_block_input(self):
        with pytest.raises(ValueError):
            bgzf_compress(b"x", block_input=0)
        with pytest.raises(ValueError):
            bgzf_compress(b"x", block_input=MAX_BLOCK_INPUT + 1)

    def test_missing_eof_detected(self, bgzf_file):
        _, bg = bgzf_file
        with pytest.raises(GzipFormatError, match="EOF"):
            scan_blocks(bg[: -len(BGZF_EOF)])

    def test_missing_bc_field_detected(self, fastq_small):
        g = stdlib_gzip.compress(fastq_small, 6)  # ordinary gzip, no BC
        with pytest.raises(GzipFormatError):
            scan_blocks(g)

    def test_block_crc_verified(self, bgzf_file):
        _, bg = bgzf_file
        blocks = scan_blocks(bg)
        corrupt = bytearray(bg)
        b = blocks[0]
        corrupt[b.coffset + b.csize - 6] ^= 0xFF  # CRC of first block
        with pytest.raises(GzipFormatError):
            read_block(bytes(corrupt), b)

    def test_paper_ratio_claim(self, fastq_medium):
        """Related work: blocked files 'yield worse compression ratios'."""
        plain = stdlib_gzip.compress(fastq_medium, 6)
        blocked = bgzf_compress(fastq_medium, 6)
        assert len(blocked) > len(plain)


class TestVirtualOffsets:
    def test_round_trip(self):
        v = make_virtual_offset(123456, 789)
        assert split_virtual_offset(v) == (123456, 789)

    def test_bounds(self):
        with pytest.raises(ValueError):
            make_virtual_offset(0, 65536)
        with pytest.raises(ValueError):
            make_virtual_offset(1 << 48, 0)

    def test_ordering_matches_file_order(self):
        assert make_virtual_offset(100, 5) < make_virtual_offset(100, 6)
        assert make_virtual_offset(100, 65535) < make_virtual_offset(101, 0)


class TestReader:
    def test_length(self, bgzf_file):
        text, bg = bgzf_file
        assert len(BgzfReader(bg)) == len(text)

    def test_read_at_random_offsets(self, bgzf_file):
        text, bg = bgzf_file
        r = BgzfReader(bg)
        for off in (0, 1, 65279, 65280, 65281, len(text) - 10, len(text) // 3):
            assert r.read_at(off, 100) == text[off : off + 100]

    def test_read_spanning_blocks(self, bgzf_file):
        text, bg = bgzf_file
        r = BgzfReader(bg)
        off = MAX_BLOCK_INPUT - 50
        assert r.read_at(off, 200) == text[off : off + 200]

    def test_read_past_end_truncates(self, bgzf_file):
        text, bg = bgzf_file
        r = BgzfReader(bg)
        assert r.read_at(len(text) - 5, 100) == text[-5:]

    def test_read_past_eof_returns_empty(self, bgzf_file):
        _, bg = bgzf_file
        assert BgzfReader(bg).read_at(10**9, 1) == b""

    def test_offset_out_of_range_for_virtual(self, bgzf_file):
        _, bg = bgzf_file
        with pytest.raises(RandomAccessError):
            BgzfReader(bg).virtual_offset_for(10**9)

    def test_virtual_offset_round_trip(self, bgzf_file):
        text, bg = bgzf_file
        r = BgzfReader(bg)
        for off in (0, 70000, len(text) - 100):
            v = r.virtual_offset_for(off)
            assert r.read_at_virtual(v, 64) == text[off : off + 64]

    def test_unknown_virtual_offset(self, bgzf_file):
        _, bg = bgzf_file
        with pytest.raises(RandomAccessError):
            BgzfReader(bg).read_at_virtual(make_virtual_offset(12345, 0), 1)


class TestParallel:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_parallel_decompress(self, executor, bgzf_file):
        text, bg = bgzf_file
        assert bgzf_decompress_parallel(bg, executor, 3) == text

    def test_pugz_also_handles_bgzf(self, bgzf_file):
        """pugz treats BGZF as what it is: multi-member gzip."""
        from repro.core import pugz_decompress

        text, bg = bgzf_file
        assert pugz_decompress(bg, n_chunks=2) == text
