"""Property tests for the random-access substrates (BGZF, index)."""

import gzip as stdlib_gzip

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgzf import BgzfReader, bgzf_compress, bgzf_decompress
from repro.data import gzip_zlib
from repro.index import GzipIndex, build_index

_text = st.builds(
    lambda lines, reps: ("\n".join(lines) + "\n").encode() * reps,
    st.lists(
        st.text(alphabet="ACGT@:+!#$%&0123456789 ", min_size=5, max_size=80),
        min_size=10,
        max_size=60,
    ),
    st.integers(min_value=1, max_value=40),
)


class TestBgzfProperty:
    @given(data=_text, block=st.integers(min_value=1024, max_value=65280))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_any_block_size(self, data, block):
        bg = bgzf_compress(data, 6, block_input=block)
        assert bgzf_decompress(bg) == data
        assert stdlib_gzip.decompress(bg) == data

    @given(
        data=_text,
        offset_frac=st.floats(min_value=0.0, max_value=0.999),
        size=st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=25, deadline=None)
    def test_read_at_arbitrary_positions(self, data, offset_frac, size):
        bg = bgzf_compress(data, 6, block_input=4096)
        reader = BgzfReader(bg)
        off = int(len(data) * offset_frac)
        assert reader.read_at(off, size) == data[off : off + size]


class TestIndexProperty:
    @given(
        data=_text,
        span=st.integers(min_value=10_000, max_value=400_000),
        offset_frac=st.floats(min_value=0.0, max_value=0.999),
    )
    @settings(max_examples=20, deadline=None)
    def test_indexed_extraction_exact(self, data, span, offset_frac):
        gz = gzip_zlib(data, 6)
        idx = build_index(gz, span=span)
        off = int(len(data) * offset_frac)
        assert idx.read_at(gz, off, 777) == data[off : off + 777]

    @given(data=_text)
    @settings(max_examples=15, deadline=None)
    def test_serialisation_preserves_behaviour(self, data):
        gz = gzip_zlib(data, 6)
        idx = build_index(gz, span=50_000)
        idx2 = GzipIndex.from_bytes(idx.to_bytes())
        mid = len(data) // 2
        assert idx.read_at(gz, mid, 100) == idx2.read_at(gz, mid, 100)
