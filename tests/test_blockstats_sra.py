"""Block statistics and the SRA-confounder workload generators."""

import numpy as np
import pytest

from repro.analysis import stream_block_stats
from repro.data import (
    ILLUMINA_ADAPTER,
    adapter_contaminated_reads,
    duplicated_reads,
    entropy_bits_per_char,
    gzip_zlib,
    low_gc_fastq,
    paired_end_fastq,
    parse_fastq,
    synthetic_fastq,
)


class TestBlockStats:
    def test_counts_and_sizes(self, fastq_medium):
        gz = gzip_zlib(fastq_medium, 6)
        stats = stream_block_stats(gz, start_bit=80)
        assert stats.count >= 3
        assert stats.out_sizes.sum() == len(fastq_medium)
        assert (stats.bit_sizes > 0).all()

    def test_probe_bounds_hold_on_real_streams(self, fastq_medium, dna_100k):
        """The Appendix X-A size bounds [1 KiB, 4 MiB] must cover the
        blocks gzip actually produces — this is what makes the check
        safe to use for rejection."""
        for data, level in ((fastq_medium, 1), (fastq_medium, 6), (dna_100k * 5, 9)):
            gz = gzip_zlib(data, level)
            stats = stream_block_stats(gz, start_bit=80)
            assert stats.within_probe_bounds() == 1.0

    def test_ratios_sane(self, fastq_medium):
        gz = gzip_zlib(fastq_medium, 6)
        stats = stream_block_stats(gz, start_bit=80)
        assert (stats.ratios < 1.1).all()
        assert (stats.ratios > 0.05).all()

    def test_block_types(self, fastq_medium):
        gz = gzip_zlib(fastq_medium, 6)
        stats = stream_block_stats(gz, start_bit=80)
        assert set(stats.btypes.tolist()) <= {0, 1, 2}


class TestSraWorkloads:
    def test_adapter_contamination_structure(self):
        data = adapter_contaminated_reads(300, read_length=100,
                                          adapter_fraction=0.5, seed=1)
        records = parse_fastq(data)
        assert len(records) == 300
        with_adapter = sum(
            1 for r in records if ILLUMINA_ADAPTER[:20] in r.sequence
        )
        assert 100 < with_adapter < 200

    def test_adapter_reads_more_compressible(self):
        """The footnote's observation: adapters drop bits/char."""
        clean = synthetic_fastq(300, read_length=100, seed=2)
        dirty = adapter_contaminated_reads(300, read_length=100,
                                           adapter_fraction=0.8, seed=2)
        gz_clean = gzip_zlib(clean, 6)
        gz_dirty = gzip_zlib(dirty, 6)
        assert len(gz_dirty) / len(dirty) < len(gz_clean) / len(clean)

    def test_duplicates_inserted(self):
        data = duplicated_reads(200, duplication_rate=0.5, seed=3)
        records = parse_fastq(data)
        seqs = [r.sequence for r in records]
        assert len(seqs) > 200
        assert len(set(seqs)) == 200

    def test_duplicate_rate_validation(self):
        with pytest.raises(ValueError):
            duplicated_reads(10, duplication_rate=1.0)

    def test_low_gc_composition(self):
        data = low_gc_fastq(300, read_length=100, gc_content=0.2, seed=4)
        records = parse_fastq(data)
        dna = b"".join(r.sequence for r in records)
        gc = sum(1 for b in dna if b in b"GC") / len(dna)
        assert 0.17 < gc < 0.23

    def test_low_gc_entropy_below_2bits(self):
        """The footnote's low-GC dataset compressed to 1.7 bits/char."""
        data = low_gc_fastq(400, read_length=100, gc_content=0.15, seed=5)
        records = parse_fastq(data)
        dna = b"".join(r.sequence for r in records)[:32768]
        assert entropy_bits_per_char(dna) < 1.9

    def test_paired_end_mates(self):
        r1, r2 = paired_end_fastq(100, read_length=80, seed=6)
        rec1, rec2 = parse_fastq(r1), parse_fastq(r2)
        assert len(rec1) == len(rec2) == 100
        comp = bytes.maketrans(b"ACGT", b"TGCA")
        # R2 is the reverse complement of the insert's tail; with
        # read_length*2 inserts, mates don't overlap, but both derive
        # from the same RNG stream: check alphabet and lengths.
        for a, b in zip(rec1, rec2):
            assert len(a.sequence) == len(b.sequence) == 80
            assert set(b.sequence) <= set(b"ACGT")
