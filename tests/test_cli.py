"""Command-line interface, exercised through main(argv)."""

import gzip as stdlib_gzip

import pytest

from repro.cli import main
from repro.data import synthetic_fastq


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    d = tmp_path_factory.mktemp("cli")
    text = synthetic_fastq(2500, read_length=100, seed=55, quality_profile="safe")
    plain = d / "reads.fastq"
    plain.write_bytes(text)
    gz = d / "reads.fastq.gz"
    gz.write_bytes(stdlib_gzip.compress(text, 6, mtime=0))
    return d, text


class TestCompressDecompress:
    def test_compress_then_stdlib_reads(self, workdir, tmp_path):
        d, text = workdir
        out = tmp_path / "out.gz"
        assert main(["compress", str(d / "reads.fastq"), "-o", str(out), "-l", "6"]) == 0
        assert stdlib_gzip.decompress(out.read_bytes()) == text

    def test_decompress(self, workdir, tmp_path):
        d, text = workdir
        out = tmp_path / "plain"
        assert main(["decompress", str(d / "reads.fastq.gz"), "-o", str(out)]) == 0
        assert out.read_bytes() == text

    def test_round_trip_own_tools(self, workdir, tmp_path):
        d, text = workdir
        gz = tmp_path / "own.gz"
        plain = tmp_path / "own.txt"
        main(["compress", str(d / "reads.fastq"), "-o", str(gz), "-l", "1"])
        main(["decompress", str(gz), "-o", str(plain)])
        assert plain.read_bytes() == text


class TestPugz:
    def test_pugz_exact(self, workdir, tmp_path):
        d, text = workdir
        out = tmp_path / "pugz.out"
        rc = main([
            "pugz", str(d / "reads.fastq.gz"), "-o", str(out),
            "-t", "3", "--executor", "serial", "--verify",
        ])
        assert rc == 0
        assert out.read_bytes() == text


class TestSyncAndInfo:
    def test_sync_finds_block(self, workdir, capsys):
        d, _ = workdir
        gz = d / "reads.fastq.gz"
        assert main(["sync", str(gz), "--offset", str(len(gz.read_bytes()) // 3)]) == 0
        assert "block start at bit" in capsys.readouterr().out

    def test_info_lists_member(self, workdir, capsys):
        d, text = workdir
        assert main(["info", str(d / "reads.fastq.gz")]) == 0
        out = capsys.readouterr().out
        assert "1 member(s)" in out
        assert f"isize={len(text)}" in out

    def test_info_blocks(self, workdir, capsys):
        d, _ = workdir
        assert main(["info", str(d / "reads.fastq.gz"), "--blocks"]) == 0
        assert "dynamic" in capsys.readouterr().out


class TestRandomAccess:
    def test_random_access_reports(self, workdir, capsys):
        d, _ = workdir
        gz = d / "reads.fastq.gz"
        size = len(gz.read_bytes())
        rc = main(["random-access", str(gz), "--offset", str(size // 4)])
        out = capsys.readouterr().out
        assert "synced at bit" in out
        assert rc in (0, 1)  # resolution depends on content scale


class TestIndexCommand:
    def test_build_and_extract(self, workdir, tmp_path):
        d, text = workdir
        idx = tmp_path / "reads.idx"
        gz = d / "reads.fastq.gz"
        assert main(["index", str(gz), str(idx), "--span", "100000"]) == 0
        assert idx.exists()
        out = tmp_path / "piece"
        assert main([
            "index", str(gz), str(idx), "--extract", "200000",
            "--size", "120", "-o", str(out),
        ]) == 0
        assert out.read_bytes() == text[200000:200120]


class TestBgzfCommand:
    def test_round_trip_and_extract(self, workdir, tmp_path):
        d, text = workdir
        bg = tmp_path / "reads.bgzf"
        assert main(["bgzf", "compress", str(d / "reads.fastq"), "-o", str(bg)]) == 0
        plain = tmp_path / "plain"
        assert main(["bgzf", "decompress", str(bg), "-o", str(plain)]) == 0
        assert plain.read_bytes() == text
        piece = tmp_path / "piece"
        assert main([
            "bgzf", "extract", str(bg), "--offset", "70000",
            "--size", "64", "-o", str(piece),
        ]) == 0
        assert piece.read_bytes() == text[70000:70064]


class TestStreamCommand:
    def test_stream_to_file(self, workdir, tmp_path):
        d, text = workdir
        out = tmp_path / "streamed"
        rc = main([
            "stream", str(d / "reads.fastq.gz"), "-o", str(out),
            "--chunks", "4", "--stripe", "2",
        ])
        assert rc == 0
        assert out.read_bytes() == text


class TestPigzCommand:
    def test_parallel_compress(self, workdir, tmp_path):
        d, text = workdir
        out = tmp_path / "pigz.gz"
        rc = main([
            "pigz", str(d / "reads.fastq"), "-o", str(out),
            "-l", "6", "--chunk-size", "100000", "--executor", "serial",
        ])
        assert rc == 0
        assert stdlib_gzip.decompress(out.read_bytes()) == text


class TestRecoverCommand:
    def test_recover_damaged_file(self, workdir, tmp_path):
        import numpy as np

        d, text = workdir
        gz = bytearray((d / "reads.fastq.gz").read_bytes())
        rng = np.random.default_rng(0)
        hole = len(gz) // 2
        gz[hole : hole + 64] = rng.integers(0, 256, 64).astype(np.uint8).tobytes()
        broken = tmp_path / "broken.gz"
        broken.write_bytes(bytes(gz))
        out = tmp_path / "salvaged"
        rc = main(["recover", str(broken), "-o", str(out)])
        assert rc in (0, 1)
        assert out.exists()


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])
