"""Workload generators: DNA, FASTQ, FASTQ-like, corpus, randomness test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CHAR_TYPES,
    CorpusSpec,
    build_corpus,
    classify_fastq_bytes,
    entropy_bits_per_char,
    fastq_like,
    gzip_zlib,
    is_random_like,
    level_stratum,
    mutate_dna,
    parse_fastq,
    random_dna,
    synthetic_fastq,
    window_entropies,
)
from repro.errors import ReproError


class TestRandomDna:
    def test_length_and_alphabet(self):
        dna = random_dna(5000, seed=1)
        assert len(dna) == 5000
        assert set(dna) <= set(b"ACGT")

    def test_deterministic_by_seed(self):
        assert random_dna(100, seed=7) == random_dna(100, seed=7)
        assert random_dna(100, seed=7) != random_dna(100, seed=8)

    def test_gc_content_bias(self):
        dna = random_dna(100_000, seed=2, gc_content=0.8)
        gc = sum(1 for b in dna if b in b"GC") / len(dna)
        assert 0.78 < gc < 0.82

    def test_uniform_composition(self):
        dna = random_dna(100_000, seed=3)
        counts = {b: dna.count(b) for b in b"ACGT"}
        for c in counts.values():
            assert abs(c - 25_000) < 1500

    def test_zero_length(self):
        assert random_dna(0) == b""

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            random_dna(-1)

    def test_invalid_gc(self):
        with pytest.raises(ValueError):
            random_dna(10, gc_content=1.5)


class TestMutateDna:
    def test_rate_zero_identity(self):
        dna = random_dna(1000, seed=4)
        assert mutate_dna(dna, 0.0, seed=1) == dna

    def test_rate_controls_divergence(self):
        dna = random_dna(50_000, seed=5)
        mutated = mutate_dna(dna, 0.1, seed=6)
        diff = sum(a != b for a, b in zip(dna, mutated))
        # Substitutions hit ~3/4 of sites with a different base.
        assert 0.05 * len(dna) < diff < 0.10 * len(dna)

    def test_alphabet_preserved(self):
        mutated = mutate_dna(random_dna(1000, seed=7), 0.5, seed=8)
        assert set(mutated) <= set(b"ACGT")

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            mutate_dna(b"ACGT", 1.1)


class TestFastqLike:
    def test_paper_structure(self):
        """150 random DNA then 300 'x', repeated (Section IV-D)."""
        s = fastq_like(2000, seed=9)
        assert len(s) == 2000
        assert set(s[:150]) <= set(b"ACGT")
        assert s[150:450] == b"x" * 300
        assert set(s[450:600]) <= set(b"ACGT")

    def test_fresh_dna_each_unit(self):
        s = fastq_like(900, seed=10)
        assert s[:150] != s[450:600]

    def test_truncation(self):
        assert len(fastq_like(100, seed=11)) == 100

    def test_custom_geometry(self):
        s = fastq_like(50, dna_length=5, spacer_length=3, spacer=b"y", seed=12)
        assert s[5:8] == b"yyy"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            fastq_like(-1)
        with pytest.raises(ValueError):
            fastq_like(10, dna_length=0)


class TestSyntheticFastq:
    def test_structure_parses(self):
        data = synthetic_fastq(50, read_length=75, seed=13)
        records = parse_fastq(data)
        assert len(records) == 50
        for r in records:
            assert len(r.sequence) == 75
            assert len(r.quality) == 75
            assert r.header.startswith(b"@SIM001:")
            assert set(r.sequence) <= set(b"ACGT")

    def test_quality_profiles(self):
        for profile, alphabet_check in [
            ("safe", lambda q: max(q) <= 64),
            ("uniform", lambda q: max(q) <= 73),
            ("illumina", lambda q: 33 <= min(q) and max(q) <= 73),
        ]:
            data = synthetic_fastq(20, read_length=50, seed=14, quality_profile=profile)
            for r in parse_fastq(data):
                assert alphabet_check(r.quality), profile

    def test_barcode_in_header(self):
        data = synthetic_fastq(3, read_length=10, seed=15, barcode="ATCACG")
        for r in parse_fastq(data):
            assert r.header.endswith(b":ATCACG")

    def test_headers_unique(self):
        data = synthetic_fastq(200, read_length=10, seed=16)
        headers = [r.header for r in parse_fastq(data)]
        assert len(set(headers)) == len(headers)

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            synthetic_fastq(1, quality_profile="martian")

    def test_zero_reads(self):
        assert synthetic_fastq(0) == b""


class TestParseFastq:
    def test_rejects_bad_line_count(self):
        with pytest.raises(ReproError):
            parse_fastq(b"@h\nACGT\n+\n")

    def test_rejects_bad_header(self):
        with pytest.raises(ReproError):
            parse_fastq(b"h\nACGT\n+\nIIII\n")

    def test_rejects_length_mismatch(self):
        with pytest.raises(ReproError):
            parse_fastq(b"@h\nACGT\n+\nIII\n")

    def test_round_trip_encode(self):
        data = synthetic_fastq(5, read_length=20, seed=17)
        assert b"".join(r.encode() for r in parse_fastq(data)) == data


class TestClassifyFastqBytes:
    def test_types_assigned_per_line(self):
        data = b"@hd\nACGT\n+\nIIII\n"
        types = classify_fastq_bytes(data)
        assert types[0] == CHAR_TYPES["header"]
        assert types[3] == CHAR_TYPES["newline"]
        assert types[4] == CHAR_TYPES["dna"]
        assert types[9] == CHAR_TYPES["plus"]
        assert types[11] == CHAR_TYPES["quality"]
        assert len(types) == len(data)

    def test_full_file_coverage(self, fastq_small):
        types = classify_fastq_bytes(fastq_small)
        assert len(types) == len(fastq_small)
        counts = np.bincount(types, minlength=5)
        assert counts[CHAR_TYPES["dna"]] == counts[CHAR_TYPES["quality"]]


class TestCorpus:
    def test_default_strata(self):
        spec = CorpusSpec(n_lowest=1, n_normal=2, n_highest=1,
                          reads_per_file=300, read_length=80)
        corpus = build_corpus(spec)
        assert [f.stratum for f in corpus] == ["lowest", "normal", "normal", "highest"]
        assert all(f.compressed_size < f.uncompressed_size for f in corpus)

    def test_files_distinct(self):
        spec = CorpusSpec(n_lowest=0, n_normal=2, n_highest=0,
                          reads_per_file=200, read_length=60)
        a, b = build_corpus(spec)
        assert a.gz != b.gz

    def test_decompressible_by_stdlib(self):
        import gzip as stdlib_gzip

        spec = CorpusSpec(n_lowest=1, n_normal=1, n_highest=1,
                          reads_per_file=200, read_length=60)
        for f in build_corpus(spec):
            out = stdlib_gzip.decompress(f.gz)
            assert len(out) == f.uncompressed_size

    def test_level_stratum_mapping(self):
        assert level_stratum(1) == "lowest"
        assert level_stratum(6) == "normal"
        assert level_stratum(9) == "highest"
        assert level_stratum(4) == "normal"


class TestRandomnessEstimator:
    def test_random_dna_measures_near_2bits(self):
        dna = random_dna(32768, seed=18)
        bits = entropy_bits_per_char(dna)
        assert 1.95 < bits < 2.2

    def test_repetitive_dna_measures_low(self):
        repeat = (b"ACGTACGTAC" * 4000)[:32768]
        assert entropy_bits_per_char(repeat) < 1.0

    def test_paper_verdicts(self):
        """The footnote's test: random reads >= 2.1 b/c, repeats below."""
        assert is_random_like(random_dna(32768, seed=19), threshold=1.95)
        assert not is_random_like(b"AAAACCCCGGGGTTTT" * 2048, threshold=1.95)

    def test_window_entropies_shape(self):
        dna = random_dna(3 * 32768, seed=20)
        ent = window_entropies(dna)
        assert len(ent) == 3
        assert (ent > 1.9).all()

    def test_empty_input(self):
        assert entropy_bits_per_char(b"") == 0.0

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            entropy_bits_per_char(b"abc", order=-1)

    def test_mutation_raises_entropy(self):
        base = (b"ACGTACGTACGTACG" * 3000)[:32768]
        noisy = mutate_dna(base, 0.3, seed=21)
        assert entropy_bits_per_char(noisy) > entropy_bits_per_char(base)
