"""Documentation consistency: the docs track the code, mechanically.

Release hygiene as tests: every benchmark is indexed in DESIGN.md and
README.md, every documented CLI subcommand exists, versions agree.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestFilesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "CHANGELOG.md",
            "CONTRIBUTING.md",
            "LICENSE",
            "docs/ALGORITHMS.md",
            "docs/FORMATS.md",
            "docs/CLI.md",
        ],
    )
    def test_doc_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 200


class TestBenchmarkIndex:
    def test_every_benchmark_indexed_in_design(self):
        design = read("DESIGN.md")
        benches = sorted(
            p.name for p in (ROOT / "benchmarks").glob("test_*.py")
        )
        missing = [
            b for b in benches
            if b not in design and b != "test_deep_scale.py"  # opt-in extra
        ]
        assert not missing, f"benchmarks not indexed in DESIGN.md: {missing}"

    def test_every_benchmark_indexed_in_readme(self):
        readme = read("README.md")
        core_benches = [
            "test_fig1_illustration.py",
            "test_fig2_random_dna.py",
            "test_fig2_fastq_like.py",
            "test_table1_random_access.py",
            "test_table2_throughput.py",
            "test_fig4_context_propagation.py",
            "test_fig5_scaling.py",
            "test_sync_detection.py",
            "test_model_validation.py",
        ]
        for b in core_benches:
            assert b in readme, f"{b} missing from README's experiment table"


class TestCliDocs:
    def test_documented_subcommands_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if hasattr(a, "choices") and a.choices
        )
        implemented = set(sub.choices)
        cli_md = read("docs/CLI.md")
        documented = set(re.findall(r"python -m repro (\w[\w-]*)", cli_md))
        assert documented <= implemented, documented - implemented
        # And everything implemented is documented.
        assert implemented <= documented, implemented - documented


class TestVersionAgreement:
    def test_pyproject_matches_package(self):
        import repro

        pyproject = read("pyproject.toml")
        m = re.search(r'version = "([^"]+)"', pyproject)
        assert m and m.group(1) == repro.__version__

    def test_changelog_mentions_current_version(self):
        import repro

        assert repro.__version__ in read("CHANGELOG.md")
