"""Structured error context: every ReproError says where it happened."""

import pickle

import pytest

from repro.errors import (
    BackrefError,
    BitstreamError,
    GzipFormatError,
    ReproError,
    SyncError,
    annotate,
)


class TestContextFields:
    def test_defaults_are_none(self):
        err = ReproError("boom")
        assert err.bit_offset is None
        assert err.chunk_index is None
        assert err.stage is None
        assert err.context() == {}

    def test_populated_context(self):
        err = GzipFormatError("bad magic", bit_offset=80, chunk_index=2, stage="container")
        assert err.context() == {"bit_offset": 80, "chunk_index": 2, "stage": "container"}

    def test_str_leads_with_message(self):
        err = BackrefError("distance 5000 exceeds history", bit_offset=123, stage="inflate")
        text = str(err)
        assert text.startswith("distance 5000 exceeds history")
        assert "bit 123" in text
        assert "stage=inflate" in text

    def test_str_reports_byte_and_bit_split(self):
        err = BitstreamError("oops", bit_offset=83)
        assert "byte 10+3" in str(err)

    def test_match_compatibility(self):
        # pytest.raises(..., match=...) greps str(); the original
        # message must stay findable with context attached.
        with pytest.raises(GzipFormatError, match="CRC"):
            raise GzipFormatError("CRC mismatch: 1 != 2", bit_offset=8, stage="trailer")


class TestAnnotate:
    def test_fills_missing_fields(self):
        err = SyncError("nope", bit_offset=9)
        annotate(err, chunk_index=3, stage="sync")
        assert err.bit_offset == 9
        assert err.chunk_index == 3
        assert err.stage == "sync"

    def test_never_overwrites(self):
        err = SyncError("nope", bit_offset=9, stage="sync")
        annotate(err, bit_offset=999, stage="other")
        assert err.bit_offset == 9
        assert err.stage == "sync"

    def test_noop_on_foreign_exception(self):
        err = ValueError("not ours")
        annotate(err, bit_offset=1)  # must not raise
        assert not hasattr(err, "bit_offset")


class TestPickling:
    @pytest.mark.parametrize("cls", [ReproError, BackrefError, GzipFormatError])
    def test_round_trip_preserves_context(self, cls):
        err = cls("broken", bit_offset=4242, chunk_index=1, stage="pass1")
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is cls
        assert clone.message == "broken"
        assert clone.bit_offset == 4242
        assert clone.chunk_index == 1
        assert clone.stage == "pass1"
        assert str(clone) == str(err)
