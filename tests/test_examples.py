"""Every example script runs to completion (subprocess smoke tests).

The examples are deliverables; a refactor that breaks one must fail CI.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    path = pathlib.Path(__file__).parent.parent / "examples" / name
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        timeout=900,
        text=True,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} printed nothing"


def test_examples_exist():
    assert len(EXAMPLES) >= 7
    assert "quickstart.py" in EXAMPLES
