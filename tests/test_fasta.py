"""FASTA format support and random access to FASTA content."""

import pytest

from repro.core import pugz_decompress, random_access_sequences
from repro.data import gzip_zlib, parse_fasta, synthetic_fasta, wrap_sequence
from repro.data.fasta import FastaRecord
from repro.errors import ReproError


class TestFormat:
    def test_round_trip(self):
        data = synthetic_fasta(5, contig_length=1000, seed=1)
        records = parse_fasta(data)
        assert len(records) == 5
        assert b"".join(r.encode() for r in records) == data

    def test_wrapping(self):
        wrapped = wrap_sequence(b"A" * 150, width=70)
        lines = wrapped.split(b"\n")
        assert lines[:-1] == [b"A" * 70, b"A" * 70, b"A" * 10]
        assert wrapped.endswith(b"\n")

    def test_wrap_empty(self):
        assert wrap_sequence(b"", 70) == b"\n"

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            wrap_sequence(b"A", 0)

    def test_unwrap_on_parse(self):
        rec = FastaRecord(b"chr1", b"ACGT" * 100)
        parsed = parse_fasta(rec.encode(width=13))
        assert parsed[0].sequence == b"ACGT" * 100

    def test_headerless_data_rejected(self):
        with pytest.raises(ReproError):
            parse_fasta(b"ACGT\n")

    def test_headers_preserved(self):
        data = synthetic_fasta(3, contig_length=200, seed=2)
        for i, r in enumerate(parse_fasta(data)):
            assert r.header.startswith(f"contig_{i:04d}".encode())


class TestCompressedFasta:
    @pytest.fixture(scope="class")
    def fasta_gz(self):
        text = synthetic_fasta(20, contig_length=60_000, seed=3)
        return text, gzip_zlib(text, 6)

    def test_pugz_exact(self, fasta_gz):
        text, gz = fasta_gz
        assert pugz_decompress(gz, n_chunks=3, verify=True) == text

    def test_random_access_resolves(self, fasta_gz):
        """FASTA is friendlier than FASTQ: no quality lines, so the
        whole stream is DNA + sparse headers — at the default level
        sequences resolve within the random-DNA decay horizon."""
        text, gz = fasta_gz
        report = random_access_sequences(gz, len(gz) // 4, min_read_length=60)
        assert report.first_resolved_block is not None
        assert report.unambiguous_fraction is not None
        assert report.unambiguous_fraction > 0.95

    def test_recovered_lines_are_true_content(self, fasta_gz):
        from repro.core.marker import to_bytes
        from repro.core.marker_inflate import marker_inflate

        text, gz = fasta_gz
        report = random_access_sequences(gz, len(gz) // 3, min_read_length=60)
        if report.first_resolved_block is None:
            pytest.skip("no resolved block at this seed")
        res = marker_inflate(gz, start_bit=report.sync_bit)
        hits = 0
        for s in report.sequences[:50]:
            if s.is_unambiguous:
                line = to_bytes(res.symbols[s.start : s.end])
                if line in text:
                    hits += 1
        assert hits > 40
