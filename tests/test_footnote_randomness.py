"""The Section V-A footnote, reproduced as a test.

Paper: "we extracted 32 KB windows of sequences [at] positions 0, 1 MB
and 20 MB of 10 Illumina datasets and tested their randomness via
compression.  All windows except in 2 datasets showed compression
ratios above 2.1 bits/character ... indicating that the files behave
similarly to random sequences.  The remaining windows in 2 datasets
compressed to respectively 1.7 and 1.9 bits/character but the
corresponding reads had low GC-content and adapter sequences."

We run the same protocol over our synthetic corpus: 8 random-like
datasets plus one low-GC and one adapter-contaminated dataset, scaled
window positions.
"""

import pytest

from repro.data import (
    adapter_contaminated_reads,
    entropy_bits_per_char,
    low_gc_fastq,
    parse_fastq,
    synthetic_fastq,
)

#: The paper's randomness threshold (bits/char).  Our order-2 context
#: model codes slightly above ideal entropy on 32 KiB windows, so the
#: random-like datasets sit just above 2.0; the structured ones fall
#: clearly below.
THRESHOLD = 2.0

WINDOW = 32768


def _dna_windows(fastq: bytes, positions=(0, 1, 2)) -> list[bytes]:
    """Concatenate the reads and slice 32 KiB windows at scaled spots."""
    dna = b"".join(r.sequence for r in parse_fastq(fastq))
    thirds = max(1, (len(dna) - WINDOW) // 3)
    return [dna[p * thirds : p * thirds + WINDOW] for p in positions]


class TestFootnoteProtocol:
    def test_random_like_datasets_pass(self):
        """8 of 10 datasets: every window above the threshold."""
        for seed in range(8):
            data = synthetic_fastq(1500, read_length=100, seed=seed)
            for window in _dna_windows(data):
                assert entropy_bits_per_char(window) >= THRESHOLD

    def test_low_gc_dataset_fails_like_the_paper(self):
        """The footnote's 1.7 bits/char dataset: low GC content."""
        data = low_gc_fastq(1500, read_length=100, gc_content=0.15, seed=100)
        values = [entropy_bits_per_char(w) for w in _dna_windows(data)]
        assert min(values) < THRESHOLD
        assert min(values) > 1.0  # still DNA, not trivial repeats

    def test_adapter_dataset_fails_like_the_paper(self):
        """The footnote's 1.9 bits/char dataset: adapter sequences."""
        data = adapter_contaminated_reads(
            1500, read_length=100, adapter_fraction=0.9, seed=101
        )
        values = [entropy_bits_per_char(w) for w in _dna_windows(data)]
        assert min(values) < THRESHOLD

    def test_verdict_ordering(self):
        """Random > adapter-heavy and random > low-GC, always."""
        rand = synthetic_fastq(1500, read_length=100, seed=0)
        lowgc = low_gc_fastq(1500, read_length=100, gc_content=0.15, seed=1)
        r = min(entropy_bits_per_char(w) for w in _dna_windows(rand))
        l = max(entropy_bits_per_char(w) for w in _dna_windows(lowgc))
        assert r > l
