"""Checkpoint index (zran-style) for gzip random access."""

import pytest

from repro.data import gzip_zlib
from repro.errors import GzipFormatError, RandomAccessError
from repro.index import Checkpoint, GzipIndex, build_index


@pytest.fixture(scope="module")
def indexed(fastq_medium):
    gz = gzip_zlib(fastq_medium, 6)
    idx = build_index(gz, span=150_000)
    return fastq_medium, gz, idx


class TestBuild:
    def test_checkpoint_density(self, indexed):
        text, gz, idx = indexed
        assert idx.usize == len(text)
        # One checkpoint per <= ~2 spans (block granularity).
        assert len(idx.checkpoints) >= len(text) // (2 * idx.span)

    def test_first_checkpoint_is_stream_start(self, indexed):
        _, gz, idx = indexed
        cp = idx.checkpoints[0]
        assert cp.uoffset == 0
        assert cp.window == b""

    def test_checkpoints_sorted_with_windows(self, indexed):
        text, _, idx = indexed
        for prev, cur in zip(idx.checkpoints, idx.checkpoints[1:]):
            assert cur.uoffset > prev.uoffset
            assert cur.window == text[max(0, cur.uoffset - 32768) : cur.uoffset]

    def test_invalid_span(self, indexed):
        _, gz, _ = indexed
        with pytest.raises(ValueError):
            build_index(gz, span=0)


class TestReadAt:
    def test_exact_extraction_everywhere(self, indexed):
        text, gz, idx = indexed
        for off in (0, 1, 50_000, 333_333, len(text) - 200):
            assert idx.read_at(gz, off, 150) == text[off : off + 150]

    def test_extraction_spanning_checkpoints(self, indexed):
        text, gz, idx = indexed
        cp = idx.checkpoints[1]
        off = cp.uoffset - 100
        assert idx.read_at(gz, off, 300) == text[off : off + 300]

    def test_nearest_selection(self, indexed):
        _, _, idx = indexed
        cp = idx.nearest(idx.checkpoints[2].uoffset + 1)
        assert cp is idx.checkpoints[2]

    def test_offset_out_of_range(self, indexed):
        _, gz, idx = indexed
        with pytest.raises(RandomAccessError):
            idx.read_at(gz, idx.usize + 1, 10)

    def test_negative_size(self, indexed):
        _, gz, idx = indexed
        with pytest.raises(ValueError):
            idx.read_at(gz, 0, -1)


class TestSerialisation:
    def test_round_trip(self, indexed):
        text, gz, idx = indexed
        blob = idx.to_bytes()
        idx2 = GzipIndex.from_bytes(blob)
        assert idx2.usize == idx.usize
        assert len(idx2.checkpoints) == len(idx.checkpoints)
        assert idx2.read_at(gz, 200_000, 99) == text[200_000 : 200_099]

    def test_windows_compressed_in_blob(self, indexed):
        _, _, idx = indexed
        raw_size = sum(len(cp.window) for cp in idx.checkpoints)
        assert len(idx.to_bytes()) < raw_size  # compression pays

    def test_bad_magic(self):
        with pytest.raises(GzipFormatError):
            GzipIndex.from_bytes(b"NOTANIDX" + b"\x00" * 40)


class TestComparisonWithProbing:
    def test_indexed_access_needs_no_probing(self, indexed):
        """The related-work trade-off: with an index, access starts at
        an exact block boundary with a known window — no search, no
        undetermined characters, any compression level."""
        text, gz, idx = indexed
        out = idx.read_at(gz, 400_000, 1000)
        assert out == text[400_000:401_000]
        assert b"?" not in out or b"?" in text[400_000:401_000]
