"""Checkpoint index (zran-style) for gzip random access."""

import pytest

from repro.data import gzip_zlib
from repro.errors import GzipFormatError, RandomAccessError
from repro.index import Checkpoint, GzipIndex, build_index


@pytest.fixture(scope="module")
def indexed(fastq_medium):
    gz = gzip_zlib(fastq_medium, 6)
    idx = build_index(gz, span=150_000)
    return fastq_medium, gz, idx


class TestBuild:
    def test_checkpoint_density(self, indexed):
        text, gz, idx = indexed
        assert idx.usize == len(text)
        # One checkpoint per <= ~2 spans (block granularity).
        assert len(idx.checkpoints) >= len(text) // (2 * idx.span)

    def test_first_checkpoint_is_stream_start(self, indexed):
        _, gz, idx = indexed
        cp = idx.checkpoints[0]
        assert cp.uoffset == 0
        assert cp.window == b""

    def test_checkpoints_sorted_with_windows(self, indexed):
        text, _, idx = indexed
        for prev, cur in zip(idx.checkpoints, idx.checkpoints[1:]):
            assert cur.uoffset > prev.uoffset
            assert cur.window == text[max(0, cur.uoffset - 32768) : cur.uoffset]

    def test_invalid_span(self, indexed):
        _, gz, _ = indexed
        with pytest.raises(ValueError):
            build_index(gz, span=0)


class TestReadAt:
    def test_exact_extraction_everywhere(self, indexed):
        text, gz, idx = indexed
        for off in (0, 1, 50_000, 333_333, len(text) - 200):
            assert idx.read_at(gz, off, 150) == text[off : off + 150]

    def test_extraction_spanning_checkpoints(self, indexed):
        text, gz, idx = indexed
        cp = idx.checkpoints[1]
        off = cp.uoffset - 100
        assert idx.read_at(gz, off, 300) == text[off : off + 300]

    def test_nearest_selection(self, indexed):
        _, _, idx = indexed
        cp = idx.nearest(idx.checkpoints[2].uoffset + 1)
        assert cp is idx.checkpoints[2]

    def test_offset_out_of_range(self, indexed):
        _, gz, idx = indexed
        with pytest.raises(RandomAccessError):
            idx.read_at(gz, idx.usize + 1, 10)

    def test_negative_size(self, indexed):
        _, gz, idx = indexed
        with pytest.raises(ValueError):
            idx.read_at(gz, 0, -1)


class TestSerialisation:
    def test_round_trip(self, indexed):
        text, gz, idx = indexed
        blob = idx.to_bytes()
        idx2 = GzipIndex.from_bytes(blob)
        assert idx2.usize == idx.usize
        assert len(idx2.checkpoints) == len(idx.checkpoints)
        assert idx2.read_at(gz, 200_000, 99) == text[200_000 : 200_099]

    def test_windows_compressed_in_blob(self, indexed):
        _, _, idx = indexed
        raw_size = sum(len(cp.window) for cp in idx.checkpoints)
        assert len(idx.to_bytes()) < raw_size  # compression pays

    def test_bad_magic(self):
        with pytest.raises(GzipFormatError):
            GzipIndex.from_bytes(b"NOTANIDX" + b"\x00" * 40)


class TestComparisonWithProbing:
    def test_indexed_access_needs_no_probing(self, indexed):
        """The related-work trade-off: with an index, access starts at
        an exact block boundary with a known window — no search, no
        undetermined characters, any compression level."""
        text, gz, idx = indexed
        out = idx.read_at(gz, 400_000, 1000)
        assert out == text[400_000:401_000]
        assert b"?" not in out or b"?" in text[400_000:401_000]


class TestMultiMember:
    """build_index walks *every* member — the bug this sweep fixed."""

    @pytest.fixture(scope="module")
    def members(self, fastq_medium):
        import gzip as stdlib_gzip

        third = len(fastq_medium) // 3
        parts = [
            fastq_medium[:third],
            fastq_medium[third : 2 * third],
            fastq_medium[2 * third :],
        ]
        gz = b"".join(stdlib_gzip.compress(p, 6) for p in parts)
        return fastq_medium, gz, build_index(gz, span=150_000)

    def test_usize_covers_all_members(self, members):
        text, _, idx = members
        assert idx.usize == len(text)
        assert idx.members == 3

    def test_member_checkpoints_have_empty_windows(self, members):
        text, _, idx = members
        member_cps = [cp for cp in idx.checkpoints if cp.kind == "member"]
        third = len(text) // 3
        assert [cp.uoffset for cp in member_cps] == [0, third, 2 * third]
        assert all(cp.window == b"" for cp in member_cps)

    def test_uoffset_continuous_across_seams(self, members):
        text, gz, idx = members
        third = len(text) // 3
        for off in (third - 1, third, third + 1, 2 * third - 1, 2 * third):
            assert idx.read_at(gz, off, 100) == text[off : off + 100], off

    def test_trailing_garbage_rejected(self, fastq_small):
        import gzip as stdlib_gzip

        gz = stdlib_gzip.compress(fastq_small, 6) + b"junk"
        with pytest.raises(GzipFormatError):
            build_index(gz, span=100_000)


class TestNearest:
    def test_pre_first_checkpoint_structured_error(self):
        cp = Checkpoint(bit_offset=800, uoffset=1000, window=b"w" * 100)
        idx = GzipIndex(checkpoints=[cp], usize=5000, span=1000)
        with pytest.raises(RandomAccessError) as exc:
            idx.nearest(500)
        assert exc.value.stage == "zran"

    def test_empty_index_structured_error(self):
        idx = GzipIndex(checkpoints=[], usize=0, span=1000)
        with pytest.raises(RandomAccessError) as exc:
            idx.nearest(0)
        assert exc.value.stage == "zran"

    def test_bisect_picks_floor_checkpoint(self):
        cps = [
            Checkpoint(bit_offset=i * 100, uoffset=i * 1000, window=b"w")
            for i in range(200)
        ]
        idx = GzipIndex(checkpoints=cps, usize=200_000, span=1000)
        assert idx.nearest(0).uoffset == 0
        assert idx.nearest(999).uoffset == 0
        assert idx.nearest(1000).uoffset == 1000
        assert idx.nearest(150_500).uoffset == 150_000
        assert idx.nearest(199_999).uoffset == 199_000


class TestSources:
    """build_index / read_at accept bytes, a path, or a file object."""

    def test_build_and_read_from_path_and_file(self, tmp_path, indexed):
        text, gz, from_bytes_idx = indexed
        path = tmp_path / "reads.gz"
        path.write_bytes(gz)

        from_path_idx = build_index(str(path), span=150_000)
        assert from_path_idx.to_bytes() == from_bytes_idx.to_bytes()

        with open(path, "rb") as fh:
            from_file_idx = build_index(fh, span=150_000)
        assert from_file_idx.to_bytes() == from_bytes_idx.to_bytes()

        expect = text[300_000:300_512]
        assert from_bytes_idx.read_at(str(path), 300_000, 512) == expect
        with open(path, "rb") as fh:
            assert from_bytes_idx.read_at(fh, 300_000, 512) == expect


class TestFormatCompat:
    def test_v1_blob_still_loads(self, indexed):
        """A pre-sweep single-member v1 blob parses and serves reads."""
        import struct
        import zlib

        text, gz, idx = indexed
        blob = bytearray()
        blob += b"RPZIDX1\x00"
        blob += struct.pack("<QQI", idx.usize, idx.span, len(idx.checkpoints))
        for cp in idx.checkpoints:
            cw = zlib.compress(cp.window, 6)
            blob += struct.pack("<QQI", cp.bit_offset, cp.uoffset, len(cw))
            blob += cw
        old = GzipIndex.from_bytes(bytes(blob))
        assert old.usize == idx.usize
        assert [c.uoffset for c in old.checkpoints] == [
            c.uoffset for c in idx.checkpoints
        ]
        assert old.read_at(gz, 123_456, 789) == text[123_456 : 123_456 + 789]

    def test_v2_round_trip_preserves_kind_and_csize(self, indexed):
        _, gz, idx = indexed
        again = GzipIndex.from_bytes(idx.to_bytes())
        assert again.csize == idx.csize == len(gz)
        assert [c.kind for c in again.checkpoints] == [
            c.kind for c in idx.checkpoints
        ]
