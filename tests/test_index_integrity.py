"""Crash-safe index sidecars: sealed envelopes, detection, self-healing.

Covers the shared envelope (`repro.index.integrity`), the zran
checkpoint index and the BGZF block table: every damage class a torn
write or bit rot can produce must surface as `IndexIntegrityError` at
load — never a struct/zlib crash — and the auto-rebuild paths must
atomically replace the damaged sidecar with a byte-identical rebuild.
"""

from __future__ import annotations

import gzip
import os
import random

import pytest

from repro.bgzf import (
    BgzfReader,
    bgzf_compress,
    load_block_index,
    load_or_scan_blocks,
    save_block_index,
    scan_blocks,
)
from repro.errors import IndexIntegrityError
from repro.index import GzipIndex, build_index, load_or_rebuild
from repro.index.integrity import atomic_write_bytes, seal, unseal


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(20190521)
    plain = bytes(rng.choice(b"ACGT") for _ in range(300_000))
    return plain, gzip.compress(plain, 6, mtime=0)


class TestEnvelope:
    def test_round_trip(self):
        payload = b"checkpoint data" * 100
        assert unseal(seal(b"ZRAN", payload), b"ZRAN") == payload

    def test_kind_must_be_four_bytes(self):
        with pytest.raises(ValueError):
            seal(b"TOOLONG", b"x")

    def test_kind_mismatch_detected(self):
        blob = seal(b"ZRAN", b"payload")
        with pytest.raises(IndexIntegrityError, match="kind"):
            unseal(blob, b"BGZF")

    def test_bit_flip_detected(self):
        blob = bytearray(seal(b"ZRAN", b"payload bytes here"))
        blob[-3] ^= 0x40  # inside the payload
        with pytest.raises(IndexIntegrityError, match="checksum"):
            unseal(bytes(blob), b"ZRAN")

    def test_truncation_detected(self):
        blob = seal(b"ZRAN", b"payload bytes here")
        with pytest.raises(IndexIntegrityError, match="length"):
            unseal(blob[:-4], b"ZRAN")
        with pytest.raises(IndexIntegrityError):
            unseal(blob[:10], b"ZRAN")  # shorter than the header

    def test_not_an_envelope_detected(self):
        with pytest.raises(IndexIntegrityError, match="magic"):
            unseal(b"\x1f\x8b" + b"\x00" * 40, b"ZRAN")

    def test_newer_version_refused(self):
        blob = seal(b"ZRAN", b"payload", version=99)
        with pytest.raises(IndexIntegrityError, match="version"):
            unseal(blob, b"ZRAN")

    def test_every_single_byte_flip_is_caught(self):
        payload = b"short payload"
        blob = seal(b"ZRAN", payload)
        for i in range(len(blob)):
            damaged = bytearray(blob)
            damaged[i] ^= 0x01
            try:
                out = unseal(bytes(damaged), b"ZRAN")
            except IndexIntegrityError:
                continue
            pytest.fail(f"flip at byte {i} went undetected (got {out!r})")


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "sidecar.idx"
        atomic_write_bytes(str(path), b"first")
        atomic_write_bytes(str(path), b"second")
        assert path.read_bytes() == b"second"

    def test_no_temp_litter(self, tmp_path):
        atomic_write_bytes(str(tmp_path / "a.idx"), b"data")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.idx"]


class TestZranSidecar:
    def test_save_load_round_trip(self, tmp_path, corpus):
        plain, gz = corpus
        idx = build_index(gz, span=65536)
        path = str(tmp_path / "reads.idx")
        idx.save(path)
        loaded = GzipIndex.load(path)
        assert loaded.to_bytes() == idx.to_bytes()
        assert loaded.read_at(gz, 100_000, 64) == plain[100_000:100_064]

    def test_bit_flip_detected_then_rebuilt_identically(self, tmp_path, corpus):
        _, gz = corpus
        path = str(tmp_path / "reads.idx")
        build_index(gz, span=65536).save(path)
        pristine = open(path, "rb").read()
        damaged = bytearray(pristine)
        damaged[len(damaged) // 2] ^= 0x10
        with open(path, "wb") as fh:
            fh.write(bytes(damaged))
        with pytest.raises(IndexIntegrityError):
            GzipIndex.load(path)
        idx, rebuilt = load_or_rebuild(path, gz, span=65536)
        assert rebuilt
        assert open(path, "rb").read() == pristine  # byte-identical replacement

    def test_truncated_file_detected(self, tmp_path, corpus):
        _, gz = corpus
        path = str(tmp_path / "reads.idx")
        build_index(gz, span=65536).save(path)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 3])
        with pytest.raises(IndexIntegrityError):
            GzipIndex.load(path)

    def test_missing_file_rebuilds(self, tmp_path, corpus):
        _, gz = corpus
        path = str(tmp_path / "fresh.idx")
        idx, rebuilt = load_or_rebuild(path, gz, span=65536)
        assert rebuilt and os.path.exists(path)
        idx2, rebuilt2 = load_or_rebuild(path, gz, span=65536)
        assert not rebuilt2
        assert idx2.to_bytes() == idx.to_bytes()

    def test_garbage_file_rebuilds_not_crashes(self, tmp_path, corpus):
        _, gz = corpus
        path = str(tmp_path / "junk.idx")
        with open(path, "wb") as fh:
            fh.write(b"not an index at all")
        idx, rebuilt = load_or_rebuild(path, gz, span=65536)
        assert rebuilt
        assert GzipIndex.load(path).to_bytes() == idx.to_bytes()


class TestBgzfSidecar:
    def test_save_load_round_trip(self, tmp_path, corpus):
        plain, _ = corpus
        bz = bgzf_compress(plain, level=6)
        path = str(tmp_path / "reads.bgzf.idx")
        blocks = scan_blocks(bz)
        save_block_index(path, blocks)
        assert load_block_index(path) == blocks

    def test_reader_accepts_persisted_table(self, tmp_path, corpus):
        plain, _ = corpus
        bz = bgzf_compress(plain, level=6)
        path = str(tmp_path / "reads.bgzf.idx")
        save_block_index(path, scan_blocks(bz))
        blocks, rebuilt = load_or_scan_blocks(path, bz)
        assert not rebuilt
        reader = BgzfReader(bz, blocks=blocks)
        assert reader.read_at(123_456, 100) == plain[123_456:123_556]

    def test_damaged_table_rescans_and_heals(self, tmp_path, corpus):
        plain, _ = corpus
        bz = bgzf_compress(plain, level=6)
        path = str(tmp_path / "reads.bgzf.idx")
        save_block_index(path, scan_blocks(bz))
        pristine = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(pristine[:-7])  # torn write
        with pytest.raises(IndexIntegrityError):
            load_block_index(path)
        blocks, rebuilt = load_or_scan_blocks(path, bz)
        assert rebuilt
        assert open(path, "rb").read() == pristine
        assert BgzfReader(bz, blocks=blocks).read_at(0, 32) == plain[:32]
