"""Cross-module integration scenarios: the paper's pipelines end to end."""

import gzip as stdlib_gzip

import numpy as np
import pytest

from repro.analysis import undetermined_window_series
from repro.core import (
    find_block_start,
    marker_inflate,
    pugz_decompress,
    random_access_sequences,
)
from repro.core.marker import MARKER_BASE, resolve, to_bytes
from repro.data import build_corpus, CorpusSpec, gzip_zlib, parse_fastq, synthetic_fastq
from repro.deflate import gzip_compress, gzip_unwrap
from repro.deflate.inflate import inflate
from tests.conftest import zlib_raw


class TestFullPipelineOwnCodec:
    """Our compressor -> sync -> marker decode -> resolve == truth."""

    def test_compress_probe_resolve(self, fastq_small):
        text = fastq_small * 2
        gz = gzip_compress(text, 6)
        full = inflate(gz, start_bit=80)
        if len(full.blocks) < 3:
            pytest.skip("too few blocks")
        mid = (full.blocks[1].start_bit + full.blocks[2].start_bit) // 2
        sync = find_block_start(gz, start_bit=mid)
        target = next(b for b in full.blocks if b.start_bit == sync.bit_offset)
        res = marker_inflate(gz, start_bit=sync.bit_offset)
        ctx = np.frombuffer(
            text[: target.out_start][-32768:], dtype=np.uint8
        ).astype(np.int32)
        assert to_bytes(resolve(res.symbols, ctx)) == text[target.out_start :]


class TestCorpusPipeline:
    def test_pugz_on_whole_corpus(self):
        corpus = build_corpus(
            CorpusSpec(n_lowest=1, n_normal=1, n_highest=1,
                       reads_per_file=800, read_length=80)
        )
        for f in corpus:
            truth = stdlib_gzip.decompress(f.gz)
            assert pugz_decompress(f.gz, n_chunks=2, verify=True) == truth

    def test_random_access_recovers_parseable_reads(self):
        """Sequences returned after a resolved block are real reads."""
        text = synthetic_fastq(4000, read_length=150, seed=101, quality_profile="safe")
        gz = gzip_zlib(text, 6)
        report = random_access_sequences(gz, len(gz) // 4)
        if report.first_resolved_block is None:
            pytest.skip("no resolved block at this scale/seed")
        reads = {r.sequence for r in parse_fastq(text)}
        res = marker_inflate(gz, start_bit=report.sync_bit)
        syms = res.symbols
        hits = 0
        for s in report.sequences[:200]:
            if s.is_unambiguous:
                seq = to_bytes(syms[s.start : s.end])
                assert seq in reads
                hits += 1
        assert hits > 50


class TestFigure2Pipeline:
    def test_window_series_decays_on_dna(self):
        """Fig 2 (top) mechanics: undetermined fraction decays along
        the stream on lazy-parsed random DNA."""
        from repro.data import random_dna

        dna = random_dna(700_000, seed=202)
        raw = zlib_raw(dna, 6)
        full = inflate(raw)
        series = undetermined_window_series(
            raw, full.blocks[1].start_bit, window_size=3600
        )
        fr = series.fractions
        assert fr[0] > 0.5
        assert fr[-10:].mean() < fr[:10].mean() * 0.3

    def test_model_tracks_measurement(self):
        """V-D: the (1-L1)^i model matches the measured decay within a
        factor-two band over the mid range."""
        from repro.analysis import payload_token_stats
        from repro.data import random_dna
        from repro.models import literal_rate, undetermined_series

        dna = random_dna(900_000, seed=203)
        raw = zlib_raw(dna, 6)
        full = inflate(raw)
        stats = payload_token_stats(raw, skip_blocks=1).stats
        oa = int(stats.mean_offset)
        series = undetermined_window_series(raw, full.blocks[1].start_bit, oa)
        measured = series.fractions
        model = undetermined_series(
            len(measured), literal_rate(mean_match_length=stats.mean_length)
        )
        # Compare where the model is in (0.05, 0.9).
        mask = (model > 0.05) & (model < 0.9)
        ratio = measured[mask] / model[mask]
        assert 0.3 < np.median(ratio) < 3.0


class TestGzipCompatibilityMatrix:
    """Every decompressor agrees with every compressor."""

    @pytest.mark.parametrize("level", [1, 6])
    def test_three_way_agreement(self, level, fastq_small):
        ours = gzip_compress(fastq_small, level)
        theirs = stdlib_gzip.compress(fastq_small, level, mtime=0)
        for gz in (ours, theirs):
            assert stdlib_gzip.decompress(gz) == fastq_small
            assert gzip_unwrap(gz) == fastq_small
            assert pugz_decompress(gz, n_chunks=2) == fastq_small
