"""Streaming file-like interface over the parallel decompressor."""

import pytest

from repro.data import parse_fastq
from repro.errors import ReproError
from repro.io import PugzStream, iter_fastq_records, open_pugz


class TestRead:
    def test_read_all(self, fastq_medium, fastq_medium_gz6):
        s = PugzStream(fastq_medium_gz6, n_chunks=4, stripe_chunks=2)
        assert s.read() == fastq_medium

    def test_read_in_pieces(self, fastq_medium, fastq_medium_gz6):
        s = PugzStream(fastq_medium_gz6, n_chunks=4, stripe_chunks=2)
        out = bytearray()
        while True:
            piece = s.read(70_001)
            if not piece:
                break
            out += piece
        assert bytes(out) == fastq_medium

    def test_tell_tracks_position(self, fastq_medium_gz6):
        s = PugzStream(fastq_medium_gz6)
        s.read(100)
        s.read(50)
        assert s.tell() == 150

    def test_readinto(self, fastq_medium, fastq_medium_gz6):
        s = PugzStream(fastq_medium_gz6)
        buf = bytearray(64)
        n = s.readinto(buf)
        assert n == 64
        assert bytes(buf) == fastq_medium[:64]

    def test_readable(self, fastq_medium_gz6):
        assert PugzStream(fastq_medium_gz6).readable()

    def test_open_pugz_from_disk(self, fastq_medium, fastq_medium_gz6, tmp_path):
        p = tmp_path / "reads.fastq.gz"
        p.write_bytes(fastq_medium_gz6)
        s = open_pugz(p, n_chunks=3)
        assert s.read() == fastq_medium


class TestLines:
    def test_line_iteration_matches_split(self, fastq_medium, fastq_medium_gz6):
        s = PugzStream(fastq_medium_gz6, n_chunks=4, stripe_chunks=1)
        lines = list(s)
        assert b"".join(lines) == fastq_medium
        assert all(l.endswith(b"\n") for l in lines[:-1])

    def test_readline_at_eof(self, fastq_medium_gz6):
        s = PugzStream(fastq_medium_gz6)
        s.read()
        assert s.readline() == b""


class TestFastqRecords:
    def test_record_iteration(self, fastq_medium, fastq_medium_gz6):
        s = PugzStream(fastq_medium_gz6, n_chunks=4, stripe_chunks=2)
        records = list(iter_fastq_records(s))
        assert records == parse_fastq(fastq_medium)

    def test_truncated_record_detected(self, fastq_medium):
        import gzip as stdlib_gzip

        broken = stdlib_gzip.compress(fastq_medium[: len(fastq_medium) // 2 + 7], 6)
        s = PugzStream(broken)
        with pytest.raises(ReproError):
            list(iter_fastq_records(s))
