"""Section V analytic models: the paper's quoted quantities and shapes."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    PAPER_MEAN_MATCH_LENGTH,
    all_positions_match_probability,
    determined_fraction,
    expected_literals,
    literal_probability,
    literal_rate,
    log10_miss_probability,
    match_probability,
    match_probability_poisson,
    undetermined_fraction,
    undetermined_series,
    windows_until_determined,
)


class TestMatchProbability:
    def test_paper_p3_bound(self):
        """Paper: for k=3, W=2^15, p_k >= 1 - 10^-225."""
        assert log10_miss_probability(3) <= -220

    def test_paper_all_positions_bound(self):
        """Paper: p_k^(W-k+1) >= 1 - 10^-220."""
        assert all_positions_match_probability(3) >= 1 - 1e-200

    def test_poisson_approximation_close(self):
        for k in range(3, 20):
            exact = match_probability(k)
            approx = match_probability_poisson(k)
            assert exact == pytest.approx(approx, abs=5e-5)

    def test_decreasing_in_k(self):
        probs = [match_probability(k) for k in range(3, 30)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_transition_near_log4_W(self):
        """p_k collapses around k = log_4(W) ~ 7.5."""
        assert match_probability(5) > 0.99
        assert match_probability(12) < 0.01

    def test_oversized_k(self):
        assert match_probability(40000, W=32768) == 0.0

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            match_probability(-1)

    def test_alphabet_generalisation(self):
        # Larger alphabets make matches rarer.
        assert match_probability(6, alphabet=4) > match_probability(6, alphabet=20)


class TestNonGreedyModel:
    def test_paper_expected_literals(self):
        """Paper: E_l ~= 1283 for W=2^15, l_a=7.6 (we allow ±5 %:
        the paper's arithmetic rounds the p_k series)."""
        e = expected_literals()
        assert 1283 * 0.95 < e < 1283 * 1.05

    def test_paper_literal_rate_4pct(self):
        """Paper: L_1 ~= 4 %."""
        assert 0.034 < literal_rate() < 0.046

    def test_series_converges(self):
        assert literal_probability(max_k=30) == pytest.approx(
            literal_probability(max_k=200), abs=1e-12
        )

    def test_longer_matches_mean_fewer_literals(self):
        assert expected_literals(mean_match_length=20) < expected_literals(
            mean_match_length=5
        )

    def test_default_uses_paper_match_length(self):
        assert expected_literals() == expected_literals(
            mean_match_length=PAPER_MEAN_MATCH_LENGTH
        )


class TestPropagation:
    def test_recurrence_equals_closed_form(self):
        """L_{i+1} = L_1 + (1-L_1) L_i must equal 1-(1-L_1)^(i+1)."""
        L1 = 0.04
        L = L1
        for i in range(1, 50):
            assert determined_fraction(i, L1) == pytest.approx(L)
            L = L1 + (1 - L1) * L

    def test_undetermined_complements_determined(self):
        for i in (1, 10, 100):
            assert undetermined_fraction(i, 0.04) + determined_fraction(i, 0.04) == pytest.approx(1.0)

    def test_series_matches_pointwise(self):
        series = undetermined_series(20, 0.04)
        for i in range(1, 21):
            assert series[i - 1] == pytest.approx(undetermined_fraction(i, 0.04))

    def test_paper_vanishing_point(self):
        """With L_1 = 4 %, undetermined drops below 1 % near window
        ~115 — consistent with Figure 2's ~150-window vanishing."""
        n = windows_until_determined(0.04, 0.01)
        assert 100 <= n <= 130

    def test_window_index_starts_at_one(self):
        with pytest.raises(ValueError):
            determined_fraction(0, 0.04)

    def test_invalid_L1(self):
        with pytest.raises(ValueError):
            windows_until_determined(0.0)
        with pytest.raises(ValueError):
            windows_until_determined(1.5)

    @given(st.floats(min_value=0.001, max_value=0.5),
           st.integers(min_value=1, max_value=500))
    @settings(max_examples=100, deadline=None)
    def test_property_monotone_decay(self, L1, i):
        assert undetermined_fraction(i + 1, L1) < undetermined_fraction(i, L1)
        assert 0.0 <= undetermined_fraction(i, L1) <= 1.0

    @given(st.floats(min_value=0.01, max_value=0.3))
    @settings(max_examples=50, deadline=None)
    def test_property_threshold_bracketing(self, L1):
        n = windows_until_determined(L1, 0.05)
        assert undetermined_fraction(n, L1) < 0.05
        if n > 1:
            assert undetermined_fraction(n - 1, L1) >= 0.05


class TestModelVsMeasurement:
    def test_model_matches_zlib_literal_rate_on_dna(self):
        """End-to-end V-D check: the literal rate zlib's lazy parser
        actually produces on random DNA sits near the model's L_1."""
        from repro.analysis import tokens_of_zlib
        from repro.data import random_dna

        dna = random_dna(400_000, seed=99)
        tokens = tokens_of_zlib(dna, 6)
        stats = tokens.stats()
        la = stats.mean_length
        model_rate = literal_rate(mean_match_length=la)
        # Steady-state literal count per output byte (skip first window).
        pos, lits, total = 0, 0, 0
        for t in tokens:
            if pos > 65536:
                total += t.length
                lits += t.is_literal
            pos += t.length
        measured = lits / total
        assert measured == pytest.approx(model_rate, rel=0.6)
