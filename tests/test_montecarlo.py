"""Monte-Carlo cross-validation of the Section V analytic models.

The analytic formulas assume independent match events; the simulators
make no such assumption, so agreement here bounds the modelling error
the paper's "experimentally-verified approximation" language refers to.
"""

import numpy as np
import pytest

from repro.models import literal_probability, match_probability, undetermined_series
from repro.models.montecarlo import (
    simulate_decay,
    simulate_literal_probability,
    simulate_match_probability,
)


class TestMatchProbability:
    @pytest.mark.parametrize("k,tol", [(5, 0.05), (7, 0.10), (8, 0.12)])
    def test_simulation_matches_analytic(self, k, tol):
        sim = simulate_match_probability(k, trials=120, seed=1)
        ana = match_probability(k)
        assert abs(sim - ana) < tol

    def test_saturated_regime(self):
        # k=4: p_k ~ 1 to within sampling noise.
        assert simulate_match_probability(4, trials=50, seed=2) == 1.0

    def test_rare_regime(self):
        # k=12: matches essentially never occur.
        assert simulate_match_probability(12, trials=50, seed=3) < 0.1


class TestLiteralProbability:
    def test_simulation_within_model_error_band(self):
        """The independence assumption inflates the analytic p_l by a
        bounded factor; simulated and analytic must agree within 35 %."""
        sim = simulate_literal_probability(trials=150, seed=2)
        ana = literal_probability()
        assert 0.65 * ana < sim < 1.35 * ana


class TestDecaySimulation:
    def test_matches_closed_form(self):
        sim = simulate_decay(0.04, 120, W=4096, seed=3)
        model = undetermined_series(120, 0.04)
        assert np.abs(sim - model).max() < 0.05

    def test_faster_decay_with_larger_L1(self):
        slow = simulate_decay(0.02, 80, seed=4)
        fast = simulate_decay(0.10, 80, seed=4)
        assert fast[40] < slow[40]

    def test_monotone_trend(self):
        sim = simulate_decay(0.05, 100, seed=5)
        # Smoothed monotone decay (individual steps are stochastic).
        assert sim[:10].mean() > sim[45:55].mean() > sim[-10:].mean()
