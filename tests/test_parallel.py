"""Execution backends."""

import os

import pytest

from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)


def square(x):
    return x * x


class TestSerialExecutor:
    def test_order_preserved(self):
        assert SerialExecutor().map(square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert SerialExecutor().map(square, []) == []

    def test_parallelism(self):
        assert SerialExecutor().parallelism == 1


class TestThreadExecutor:
    def test_order_preserved(self):
        assert ThreadExecutor(4).map(square, list(range(20))) == [i * i for i in range(20)]

    def test_single_item_inline(self):
        assert ThreadExecutor(4).map(square, [5]) == [25]

    def test_default_worker_count(self):
        assert ThreadExecutor().n_workers == (os.cpu_count() or 1)

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            ThreadExecutor(2).map(boom, [1, 2])


class TestProcessExecutor:
    def test_order_preserved(self):
        assert ProcessExecutor(2).map(square, [4, 3]) == [16, 9]

    def test_parallelism_reported(self):
        assert ProcessExecutor(3).parallelism == 3


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread", 2), ThreadExecutor)
        assert isinstance(make_executor("process", 2), ProcessExecutor)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_executor("gpu")
