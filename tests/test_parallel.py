"""Execution backends."""

import os

import pytest

from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)


def square(x):
    return x * x


class TestSerialExecutor:
    def test_order_preserved(self):
        assert SerialExecutor().map(square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert SerialExecutor().map(square, []) == []

    def test_parallelism(self):
        assert SerialExecutor().parallelism == 1


class TestThreadExecutor:
    def test_order_preserved(self):
        assert ThreadExecutor(4).map(square, list(range(20))) == [i * i for i in range(20)]

    def test_single_item_inline(self):
        assert ThreadExecutor(4).map(square, [5]) == [25]

    def test_default_worker_count(self):
        assert ThreadExecutor().n_workers == (os.cpu_count() or 1)

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            ThreadExecutor(2).map(boom, [1, 2])


class TestProcessExecutor:
    def test_order_preserved(self):
        assert ProcessExecutor(2).map(square, [4, 3]) == [16, 9]

    def test_parallelism_reported(self):
        assert ProcessExecutor(3).parallelism == 3


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread", 2), ThreadExecutor)
        assert isinstance(make_executor("process", 2), ProcessExecutor)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_executor("gpu")


def boom_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x * 10


def raise_repro(x):
    from repro.errors import BackrefError

    raise BackrefError("too far", bit_offset=x, chunk_index=7, stage="pass1")


class TestMapOutcomes:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_captures_per_item_errors(self, kind):
        outcomes = make_executor(kind, 2).map_outcomes(boom_on_three, [1, 3, 5])
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert outcomes[0].ok and outcomes[0].value == 10
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, ValueError)
        assert outcomes[2].ok and outcomes[2].value == 50

    def test_all_ok(self):
        outcomes = SerialExecutor().map_outcomes(square, [2, 4])
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [4, 16]

    def test_empty(self):
        assert SerialExecutor().map_outcomes(square, []) == []

    def test_repro_error_context_survives_process_boundary(self):
        outcomes = ProcessExecutor(2).map_outcomes(raise_repro, [11, 22])
        for o, bit in zip(outcomes, [11, 22]):
            assert not o.ok
            assert o.error.bit_offset == bit
            assert o.error.chunk_index == 7
            assert o.error.stage == "pass1"
