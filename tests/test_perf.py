"""Performance model: calibration against Table II, scaling shapes."""

import numpy as np
import pytest

from repro.parallel.scheduler import greedy_assign, lpt_makespan, round_robin_makespan
from repro.perf import (
    PAPER_MODEL,
    PRESETS,
    CostModel,
    bottleneck,
    pipeline_throughput,
    simulate_cat,
    simulate_pugz,
    simulate_sequential,
    sweep_threads,
)


class TestTable2Calibration:
    def test_sequential_anchors(self):
        """The model's sequential personas ARE the paper's numbers."""
        assert simulate_sequential(PAPER_MODEL, "gunzip", 1000).speed_mbps == pytest.approx(37.0)
        assert simulate_sequential(PAPER_MODEL, "libdeflate", 1000).speed_mbps == pytest.approx(118.0)

    def test_pugz_32_threads_near_paper(self):
        """Paper Table II: pugz at 32 threads = 611 MB/s.  The model
        *predicts* (not fits) this from the schedule; require ±10 %."""
        speed = simulate_pugz(PAPER_MODEL, 5000, 32).speed_mbps
        assert 611 * 0.9 < speed < 611 * 1.1

    def test_speedup_ratios(self):
        """Paper: 16.5x over gunzip, 5.2x over libdeflate."""
        p = simulate_pugz(PAPER_MODEL, 5000, 32).speed_mbps
        assert 14.5 < p / 37.0 < 18.5
        assert 4.6 < p / 118.0 < 5.8

    def test_unknown_persona(self):
        with pytest.raises(ValueError):
            simulate_sequential(PAPER_MODEL, "zstd", 100)


class TestScalingShape:
    def test_monotone_up_to_core_count(self):
        speeds = [simulate_pugz(PAPER_MODEL, 5000, n).speed_mbps for n in (1, 2, 4, 8, 16, 24)]
        assert all(a < b for a, b in zip(speeds, speeds[1:]))

    def test_saturates_past_cores(self):
        s24 = simulate_pugz(PAPER_MODEL, 5000, 24).speed_mbps
        s32 = simulate_pugz(PAPER_MODEL, 5000, 32).speed_mbps
        assert abs(s32 - s24) / s24 < 0.1

    def test_crossover_with_libdeflate_between_4_and_8(self):
        """Figure 5: pugz overtakes libdeflate in the 4-8 thread range."""
        s4 = simulate_pugz(PAPER_MODEL, 5000, 4).speed_mbps
        s8 = simulate_pugz(PAPER_MODEL, 5000, 8).speed_mbps
        assert s4 < 140.0
        assert s8 > 118.0

    def test_single_thread_slower_than_gunzip(self):
        """Marker tracking costs: 1-thread pugz loses to gunzip."""
        assert simulate_pugz(PAPER_MODEL, 5000, 1).speed_mbps < 37.0

    def test_cat_is_upper_bound(self):
        cat = simulate_cat(PAPER_MODEL, 5000).speed_mbps
        assert cat > simulate_pugz(PAPER_MODEL, 5000, 32).speed_mbps

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            simulate_pugz(PAPER_MODEL, 100, 0)

    def test_sweep_reproducible_and_shaped(self):
        a = sweep_threads(PAPER_MODEL, [3000.0, 5000.0], [2, 8, 32], reps=3, seed=1)
        b = sweep_threads(PAPER_MODEL, [3000.0, 5000.0], [2, 8, 32], reps=3, seed=1)
        assert a == b
        means = [a[n][0] for n in (2, 8, 32)]
        assert means[0] < means[1] < means[2]
        assert all(a[n][1] >= 0 for n in a)

    def test_output_sync_overhead(self):
        """The paper's 10-20% synchronised-output penalty."""
        base = simulate_pugz(PAPER_MODEL, 5000, 8).speed_mbps
        synced = simulate_pugz(PAPER_MODEL.with_output_sync(0.15), 5000, 8).speed_mbps
        assert synced == pytest.approx(base / 1.15)


class TestMeasuredCalibration:
    def test_measure_python_returns_sane_model(self, fastq_small):
        import gzip as stdlib_gzip

        gz = stdlib_gzip.compress(fastq_small, 6)
        model = CostModel.measure_python(gz, fastq_small)
        assert 0.01 < model.gunzip_mbps < 1000
        assert model.pass1_mbps > 0
        assert model.translate_mbps > model.pass1_mbps  # memcpy-class
        assert model.compression_ratio == pytest.approx(len(fastq_small) / len(gz))


class TestProfiling:
    def test_profile_shape(self, fastq_small):
        from repro.data import gzip_zlib
        from repro.perf import profile_inflate

        gz = gzip_zlib(fastq_small, 6)
        profile = profile_inflate(gz)
        assert profile.output_bytes == len(fastq_small)
        assert profile.blocks >= 1
        assert profile.decode_mbps > 0
        total_frac = sum(frac for _, _, frac in profile.rows())
        assert 0.5 < total_frac <= 1.01


class TestTimeline:
    def test_events_cover_all_stages(self):
        from repro.perf import PAPER_MODEL, simulate_pugz

        r = simulate_pugz(PAPER_MODEL, 1000, 4, timeline=True)
        stages = {e[1] for e in r.events}
        assert stages == {"sync", "pass1", "resolve", "pass2"}
        # Events are time-consistent: pass2 starts after resolve ends.
        resolve_end = max(e[3] for e in r.events if e[1] == "resolve")
        for e in r.events:
            if e[1] == "pass2":
                assert e[2] >= resolve_end - 1e-9

    def test_no_timeline_by_default(self):
        from repro.perf import PAPER_MODEL, simulate_pugz

        assert simulate_pugz(PAPER_MODEL, 1000, 4).events is None


class TestStorageModels:
    def test_presets_exist(self):
        for name in ("hdd", "sata_ssd", "nvme", "nas", "ram"):
            assert PRESETS[name].read_mbps > 0

    def test_paper_intro_claim(self):
        """Section I: gunzip (~37 MB/s) is the bottleneck on every
        modern device, by 1-2 orders of magnitude on NVMe."""
        for name in ("hdd", "sata_ssd", "nvme"):
            assert bottleneck(PRESETS[name], 37.0) == "decompression"
        assert PRESETS["nvme"].read_mbps / 37.0 > 50

    def test_pugz_shifts_bottleneck(self):
        """At 611 MB/s, SATA storage becomes the bottleneck."""
        assert bottleneck(PRESETS["sata_ssd"], 611.0) == "storage"

    def test_pipeline_throughput_overlapped(self):
        assert pipeline_throughput(PRESETS["sata_ssd"], 37.0) == 37.0
        assert pipeline_throughput(PRESETS["sata_ssd"], 9999.0) == 500.0

    def test_pipeline_throughput_serial(self):
        t = pipeline_throughput(PRESETS["sata_ssd"], 500.0, overlapped=False)
        assert t == pytest.approx(250.0)

    def test_invalid_decomp_rate(self):
        with pytest.raises(ValueError):
            pipeline_throughput(PRESETS["hdd"], 0)


class TestSchedulers:
    def test_lpt_balances(self):
        # LPT on [5,4,3,3,3]/2 workers gives 10 (the optimum is 9; LPT
        # is a 4/3-approximation, and 10 <= 4/3 * 9).
        costs = [5, 4, 3, 3, 3]
        assert lpt_makespan(costs, 2) == 10

    def test_lpt_single_worker(self):
        assert lpt_makespan([1, 2, 3], 1) == 6

    def test_round_robin(self):
        assert round_robin_makespan([4, 1, 4, 1], 2) == 8  # worker0: 4+4

    def test_assignment_covers_all(self):
        assignment = greedy_assign([3, 1, 4, 1, 5], 3)
        flat = sorted(i for lst in assignment for i in lst)
        assert flat == [0, 1, 2, 3, 4]

    def test_lpt_within_approximation_bound(self):
        """LPT makespan <= 4/3 * lower bound (Graham's guarantee)."""
        rng = np.random.default_rng(2)
        for _ in range(20):
            costs = rng.random(10).tolist()
            lb = max(sum(costs) / 3, max(costs))
            assert lb <= lpt_makespan(costs, 3) <= (4 / 3) * lb + 1e-12

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            lpt_makespan([1], 0)
        with pytest.raises(ValueError):
            round_robin_makespan([1], 0)
