"""Property-based checks of the performance model's structure."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import PAPER_MODEL, simulate_pugz, simulate_sequential


class TestSimulatorProperties:
    @given(
        mb=st.floats(min_value=10, max_value=20000),
        n=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_speed_independent_of_file_size_asymptotically(self, mb, n):
        """Throughput converges for large files (sync amortises)."""
        small = simulate_pugz(PAPER_MODEL, mb, n).speed_mbps
        large = simulate_pugz(PAPER_MODEL, mb * 100, n).speed_mbps
        assert large >= small * 0.95

    @given(n=st.integers(min_value=1, max_value=23))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_threads_below_cores(self, n):
        a = simulate_pugz(PAPER_MODEL, 5000, n).speed_mbps
        b = simulate_pugz(PAPER_MODEL, 5000, n + 1).speed_mbps
        assert b > a

    @given(scale=st.floats(min_value=1.1, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_pass1_rate(self, scale):
        faster = replace(PAPER_MODEL, pass1_mbps=PAPER_MODEL.pass1_mbps * scale)
        assert (
            simulate_pugz(faster, 5000, 16).speed_mbps
            > simulate_pugz(PAPER_MODEL, 5000, 16).speed_mbps
        )

    @given(
        ratio=st.floats(min_value=1.5, max_value=10.0),
        n=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=30, deadline=None)
    def test_higher_compression_ratio_costs_translate_time(self, ratio, n):
        """More uncompressed bytes per compressed byte = more pass-2
        work = lower compressed-MB/s."""
        heavy = replace(PAPER_MODEL, compression_ratio=ratio * 2)
        light = replace(PAPER_MODEL, compression_ratio=ratio)
        assert (
            simulate_pugz(heavy, 5000, n).speed_mbps
            <= simulate_pugz(light, 5000, n).speed_mbps
        )

    @given(mb=st.floats(min_value=1, max_value=10000))
    @settings(max_examples=30, deadline=None)
    def test_sequential_throughput_is_flat(self, mb):
        a = simulate_sequential(PAPER_MODEL, "gunzip", mb).speed_mbps
        assert a == pytest.approx(PAPER_MODEL.gunzip_mbps)

    @given(
        n=st.integers(min_value=1, max_value=32),
        overhead=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_output_sync_scales_wall_time(self, n, overhead):
        base = simulate_pugz(PAPER_MODEL, 3000, n)
        synced = simulate_pugz(PAPER_MODEL.with_output_sync(overhead), 3000, n)
        assert synced.wall_seconds == pytest.approx(
            base.wall_seconds * (1 + overhead)
        )
