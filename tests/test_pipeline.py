"""Pipeline head: chunk-parallel analysis with mergeable analyzers."""

import numpy as np
import pytest

from repro.data import FastqRecord, gzip_zlib, parse_fastq, synthetic_fastq
from repro.pipeline import (
    GcProfile,
    KmerCounter,
    LengthHistogram,
    QualityStats,
    run_fastq_pipeline,
)
from repro.pipeline.runner import _split_records


def record(seq: bytes, qual: bytes | None = None) -> FastqRecord:
    qual = qual if qual is not None else b"I" * len(seq)
    return FastqRecord(b"@r", seq, b"+", qual)


class TestKmerCounter:
    def test_counts(self):
        c = KmerCounter(k=3)
        c.consume(record(b"ACGTACG"))
        assert c.counts[b"ACG"] == 2
        assert c.total == 5
        assert c.distinct == 4

    def test_merge(self):
        a, b = KmerCounter(3), KmerCounter(3)
        a.consume(record(b"AAAA"))
        b.consume(record(b"AAA"))
        a.merge(b)
        assert a.counts[b"AAA"] == 3
        assert a.reads == 2

    def test_merge_k_mismatch(self):
        with pytest.raises(ValueError):
            KmerCounter(3).merge(KmerCounter(4))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KmerCounter(0)

    def test_read_shorter_than_k(self):
        c = KmerCounter(k=10)
        c.consume(record(b"ACGT"))
        assert c.total == 0


class TestQualityStats:
    def test_mean_by_cycle(self):
        q = QualityStats()
        q.consume(record(b"AC", bytes([33 + 30, 33 + 20])))
        q.consume(record(b"AC", bytes([33 + 10, 33 + 40])))
        assert q.mean_by_cycle().tolist() == [20.0, 30.0]
        assert q.mean_quality == 25.0

    def test_variable_lengths(self):
        q = QualityStats()
        q.consume(record(b"A", bytes([33 + 10])))
        q.consume(record(b"ACG", bytes([33 + 20] * 3)))
        means = q.mean_by_cycle()
        assert means[0] == 15.0
        assert means[2] == 20.0

    def test_merge(self):
        a, b = QualityStats(), QualityStats()
        a.consume(record(b"A", bytes([33 + 10])))
        b.consume(record(b"AC", bytes([33 + 30, 33 + 30])))
        a.merge(b)
        assert a.reads == 2
        assert a.mean_by_cycle()[0] == 20.0


class TestGcProfile:
    def test_mean_and_histogram(self):
        g = GcProfile(bins=10)
        g.consume(record(b"GGCC"))  # 100% GC
        g.consume(record(b"AATT"))  # 0% GC
        assert g.mean_gc == 0.5
        assert g.histogram[0] == 1
        assert g.histogram[-1] == 1

    def test_merge_bins_mismatch(self):
        with pytest.raises(ValueError):
            GcProfile(10).merge(GcProfile(5))

    def test_empty_read_ignored(self):
        g = GcProfile()
        g.consume(record(b""))
        assert g.reads == 0


class TestLengthHistogram:
    def test_modal_length(self):
        h = LengthHistogram()
        for seq in (b"AAAA", b"CCCC", b"GG"):
            h.consume(record(seq))
        assert h.modal_length == 4
        assert h.reads == 3


class TestSplitRecords:
    def test_aligned_chunk(self):
        chunk = b"@r1\nACGT\n+\nIIII\n@r2\nCCCC\n+\nJJJJ\n"
        head, whole, tail = _split_records(chunk)
        assert head == b""
        assert whole == chunk
        assert tail == b""

    def test_partial_edges(self):
        chunk = b"GT\n+\nIIII\n@r2\nCCCC\n+\nJJJJ\n@r3\nGG"
        head, whole, tail = _split_records(chunk)
        assert head == b"GT\n+\nIIII\n"
        assert whole == b"@r2\nCCCC\n+\nJJJJ\n"
        assert tail == b"@r3\nGG"

    def test_reassembly_invariant(self):
        chunk = b"II\n@rX\nACGT\n+\nIIII\n@rY\nCC"
        head, whole, tail = _split_records(chunk)
        assert head + whole + tail == chunk


class TestRunPipeline:
    @pytest.fixture(scope="class")
    def data(self):
        text = synthetic_fastq(2500, read_length=100, seed=55, quality_profile="safe")
        return text, gzip_zlib(text, 6)

    def test_all_reads_seen_once(self, data):
        text, gz = data
        result = run_fastq_pipeline(gz, [LengthHistogram], n_chunks=4)
        assert result.reads == len(parse_fastq(text))
        assert result.analyzers[0].reads == result.reads

    def test_results_match_sequential_reference(self, data):
        """Chunked analysis == analysing the whole file in one piece."""
        text, gz = data
        result = run_fastq_pipeline(
            gz, [lambda: KmerCounter(8), QualityStats, GcProfile], n_chunks=5
        )
        kmer, qual, gc = result.analyzers

        ref_k, ref_q, ref_g = KmerCounter(8), QualityStats(), GcProfile()
        for r in parse_fastq(text):
            ref_k.consume(r)
            ref_q.consume(r)
            ref_g.consume(r)

        assert kmer.counts == ref_k.counts
        assert qual.mean_quality == pytest.approx(ref_q.mean_quality)
        assert np.allclose(gc.histogram, ref_g.histogram)

    def test_chunk_counts_vary(self, data):
        text, gz = data
        for n in (1, 2, 7):
            result = run_fastq_pipeline(gz, [LengthHistogram], n_chunks=n)
            assert result.reads == len(parse_fastq(text))
