"""Measured-to-testbed projection of the cost model."""

import pytest

from repro.perf.costmodel import CostModel
from repro.perf.projection import project_model, projected_speedup_report


@pytest.fixture()
def python_like_model():
    """A plausible pure-Python measurement (MB/s)."""
    return CostModel(
        gunzip_mbps=1.2,
        libdeflate_mbps=2.0,
        pass1_mbps=0.6,
        translate_mbps=80.0,
        cat_mbps=4000.0,
        physical_cores=1,
        sync_seconds=0.3,
        resolve_seconds_per_boundary=1e-4,
        compression_ratio=3.2,
    )


class TestProjectModel:
    def test_anchor_hit_exactly(self, python_like_model):
        projected = project_model(python_like_model, target_libdeflate_mbps=118.0)
        assert projected.libdeflate_mbps == 118.0
        assert projected.physical_cores == 24

    def test_stage_ratios_preserved(self, python_like_model):
        """Projection scales, it does not reshuffle: the gunzip/
        libdeflate and pass1/libdeflate ratios survive."""
        p = project_model(python_like_model)
        m = python_like_model
        assert p.gunzip_mbps / p.libdeflate_mbps == pytest.approx(
            m.gunzip_mbps / m.libdeflate_mbps
        )
        assert p.pass1_mbps / p.libdeflate_mbps == pytest.approx(
            m.pass1_mbps / m.libdeflate_mbps
        )

    def test_sync_time_shrinks(self, python_like_model):
        p = project_model(python_like_model)
        assert p.sync_seconds < python_like_model.sync_seconds

    def test_invalid_measured_model(self, python_like_model):
        from dataclasses import replace

        broken = replace(python_like_model, libdeflate_mbps=0.0)
        with pytest.raises(ValueError):
            project_model(broken)


class TestProjectedReport:
    def test_report_structure_and_sanity(self, python_like_model):
        report = projected_speedup_report(python_like_model)
        assert report["libdeflate_mbps"] == pytest.approx(118.0)
        assert report["pugz_mbps"] > report["libdeflate_mbps"]
        assert report["speedup_vs_gunzip"] > report["speedup_vs_libdeflate"] > 1.0

    def test_speedup_bounded_by_cores(self, python_like_model):
        report = projected_speedup_report(python_like_model, n_threads=32)
        # pugz per-thread is slower than gunzip here, so the speedup
        # cannot exceed core count.
        assert report["speedup_vs_gunzip"] < 24
