"""SeekableGzipReader: one index layer over zran / BGZF / pugz.

Covers the seek edge cases the facade must get right (offset 0, EOF,
``usize - 1``, checkpoint boundaries ±1 byte, empty members inside
multi-member files), the warm-seek cost guarantee (a seek decodes at
most ``span`` bytes, asserted by instrumenting the inflate call), the
sidecar cold/warm lifecycle, and a zran-vs-bgzf-vs-full-decode
differential over the 50-stream fuzz corpus.
"""

import gzip as stdlib_gzip
import io
import zlib

import pytest

import repro.index.zran as zran_mod
from repro.bgzf.format import bgzf_compress
from repro.deflate.gzipfmt import gzip_wrap
from repro.errors import GzipFormatError, RandomAccessError
from repro.index import GzipIndex, build_index
from repro.index.seekable import SeekableGzipReader, detect_backend
from repro.io.source import ByteSource
from tests.deflate.test_differential_fuzz import SEEDS, SHAPES, compress_shape, make_text

SPAN = 65536


def _corpus(n: int = 600_000) -> bytes:
    return make_text(3, n)  # FASTQ-like shape


@pytest.fixture(scope="module")
def text():
    return _corpus()


@pytest.fixture(scope="module")
def gz(text):
    return stdlib_gzip.compress(text, 6)


@pytest.fixture(scope="module")
def indexed(text, gz):
    return build_index(gz, span=SPAN)


class TestBackendDetection:
    def test_plain_gzip(self, gz):
        assert detect_backend(gz) == "zran"

    def test_bgzf(self, text):
        assert detect_backend(bgzf_compress(text)) == "bgzf"

    def test_not_gzip(self):
        with pytest.raises(GzipFormatError):
            detect_backend(b"PK\x03\x04 definitely a zip")


class TestSeekEdges:
    @pytest.fixture(scope="class")
    def reader(self, text, gz):
        idx = build_index(gz, span=SPAN)
        return SeekableGzipReader(gz, index=idx)

    def test_seek_zero(self, reader, text):
        reader.seek(0)
        assert reader.read(100) == text[:100]

    def test_seek_eof(self, reader, text):
        reader.seek(0, io.SEEK_END)
        assert reader.tell() == len(text)
        assert reader.read(100) == b""

    def test_seek_last_byte(self, reader, text):
        reader.seek(len(text) - 1)
        assert reader.read(100) == text[-1:]

    def test_read_straddles_eof(self, reader, text):
        assert reader.pread(len(text) - 10, 1000) == text[-10:]

    def test_seek_past_eof_reads_empty(self, reader, text):
        assert reader.pread(len(text) + 1000, 10) == b""

    def test_negative_offset_rejected(self, reader):
        with pytest.raises(RandomAccessError):
            reader.pread(-1, 10)
        with pytest.raises(RandomAccessError):
            reader.seek(-5)

    def test_checkpoint_boundaries_plus_minus_one(self, reader, text):
        cps = reader.index.checkpoints
        assert len(cps) >= 3, "corpus too small to exercise checkpoints"
        for cp in cps:
            for off in (cp.uoffset - 1, cp.uoffset, cp.uoffset + 1):
                if not 0 <= off < len(text):
                    continue
                assert reader.pread(off, 64) == text[off : off + 64], off

    def test_relative_and_end_whence(self, reader, text):
        reader.seek(1000)
        reader.seek(500, io.SEEK_CUR)
        assert reader.read(10) == text[1500:1510]
        reader.seek(-100, io.SEEK_END)
        assert reader.read() == text[-100:]


class TestMultiMember:
    @pytest.fixture(scope="class")
    def multi(self, text):
        # An empty member in the middle — uoffset must stay continuous
        # and reads must never decode across a seam with a stale window.
        blob = (
            stdlib_gzip.compress(text[:200_000], 6)
            + stdlib_gzip.compress(b"", 6)
            + stdlib_gzip.compress(text[200_000:], 6)
        )
        return blob

    def test_empty_member_mid_file(self, multi, text):
        idx = build_index(multi, span=SPAN)
        assert idx.usize == len(text)
        assert idx.members == 3
        reader = SeekableGzipReader(multi, index=idx)
        # Reads around the seam (and the empty member at it).
        for off in (199_000, 199_999, 200_000, 200_001):
            assert reader.pread(off, 2048) == text[off : off + 2048], off

    def test_read_spanning_seam(self, multi, text):
        idx = build_index(multi, span=SPAN)
        got = idx.read_at(multi, 195_000, 10_000)
        assert got == text[195_000:205_000]

    def test_full_read_matches(self, multi, text):
        reader = SeekableGzipReader(multi, cold_start="sequential", span=SPAN)
        assert reader.read() == text


def _sync_flush_gzip(text: bytes, block: int = 8192) -> bytes:
    """Gzip whose DEFLATE blocks each cover <= ``block`` output bytes."""
    co = zlib.compressobj(6, zlib.DEFLATED, -15)
    parts = []
    for i in range(0, len(text), block):
        parts.append(co.compress(text[i : i + block]))
        parts.append(co.flush(zlib.Z_SYNC_FLUSH))
    parts.append(co.flush(zlib.Z_FINISH))
    return gzip_wrap(b"".join(parts), text)


class TestSpanGuarantee:
    def test_warm_seek_decodes_at_most_span(self, text, monkeypatch):
        """The O(1)-seek contract: after the index exists, a warm seek
        asks inflate for at most ``span`` output bytes (plus the bytes
        actually requested) and the decode overshoots the request only
        by block granularity.  Blocks are kept under 8 KiB so no single
        block exceeds the span — the one case where the floor is the
        block, not the span."""
        block = 8192
        span = 32768
        gz = _sync_flush_gzip(text, block)
        idx = build_index(gz, span=span)
        gaps_ok = all(
            b - a <= span
            for a, b in zip(
                [cp.uoffset for cp in idx.checkpoints],
                [cp.uoffset for cp in idx.checkpoints][1:] + [idx.usize],
            )
        )
        assert gaps_ok, "builder left a checkpoint gap wider than span"

        calls = []
        real_inflate = zran_mod.inflate

        def spy(data, **kwargs):
            result = real_inflate(data, **kwargs)
            calls.append((kwargs.get("max_output"), len(result.data)))
            return result

        monkeypatch.setattr(zran_mod, "inflate", spy)
        reader = SeekableGzipReader(gz, index=idx)
        step = len(text) // 23
        for off in range(0, len(text), step):
            assert reader.pread(off, 1) == text[off : off + 1]
        assert calls, "no inflate calls observed"
        for max_output, decoded in calls:
            assert max_output is not None and max_output <= span + 1
            assert decoded <= span + 1 + block

    def test_stats_track_decode_cost(self, gz, indexed, text):
        reader = SeekableGzipReader(gz, index=indexed)
        reader.pread(len(text) // 2, 100)
        assert reader.stats.inflate_calls == 1
        assert 0 < reader.stats.decoded_bytes <= SPAN + 300_000
        # Ranged I/O: far less compressed data than the whole file.
        assert 0 < reader.stats.compressed_bytes_read < len(gz)


class TestSidecarLifecycle:
    def test_cold_then_warm(self, tmp_path, text, gz):
        sidecar = str(tmp_path / "reads.idx")
        cold = SeekableGzipReader(gz, index_path=sidecar, n_chunks=4)
        mid = len(text) // 2
        assert cold.pread(mid, 256) == text[mid : mid + 256]
        assert cold.stats.index_builds == 1
        assert not cold.stats.index_loaded

        warm = SeekableGzipReader(gz, index_path=sidecar)
        assert warm.stats.index_loaded
        assert warm.pread(mid, 256) == text[mid : mid + 256]
        assert warm.stats.index_builds == 0

    def test_damaged_sidecar_triggers_rebuild(self, tmp_path, text, gz):
        sidecar = tmp_path / "reads.idx"
        SeekableGzipReader(gz, index_path=str(sidecar), n_chunks=4).usize
        blob = bytearray(sidecar.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        sidecar.write_bytes(bytes(blob))
        reader = SeekableGzipReader(gz, index_path=str(sidecar), n_chunks=4)
        assert not reader.stats.index_loaded
        assert reader.pread(1000, 50) == text[1000:1050]
        assert reader.stats.index_builds == 1
        # The replacement sidecar is intact again.
        assert SeekableGzipReader(gz, index_path=str(sidecar)).stats.index_loaded

    def test_pugz_cold_start_second_touch_is_checkpoint_driven(self, text, gz):
        reader = SeekableGzipReader(gz, n_chunks=4)
        mid = len(text) // 2
        assert reader.pread(mid, 128) == text[mid : mid + 128]
        assert reader.stats.index_builds == 1
        reader.stats.reset_counters()
        assert reader.pread(100, 64) == text[100:164]
        assert reader.stats.index_builds == 1  # no second build
        assert reader.stats.decoded_bytes <= reader.index.span + 300_000


class TestSources:
    def test_path_file_bytes_identical(self, tmp_path, text, gz, indexed):
        path = tmp_path / "reads.gz"
        path.write_bytes(gz)
        off = len(text) // 3
        expect = text[off : off + 512]
        assert SeekableGzipReader(gz, index=indexed).pread(off, 512) == expect
        assert SeekableGzipReader(str(path), index=indexed).pread(off, 512) == expect
        with open(path, "rb") as fh:
            assert SeekableGzipReader(fh, index=indexed).pread(off, 512) == expect

    def test_borrowed_file_left_open(self, tmp_path, gz):
        path = tmp_path / "reads.gz"
        path.write_bytes(gz)
        with open(path, "rb") as fh:
            src = ByteSource(fh)
            src.pread(0, 2)
            src.close()
            assert not fh.closed
            fh.seek(0)
            assert fh.read(2) == gz[:2]

    def test_bgzf_from_path(self, tmp_path, text):
        path = tmp_path / "reads.bgzf"
        path.write_bytes(bgzf_compress(text))
        reader = SeekableGzipReader(str(path))
        assert reader.backend == "bgzf"
        off = len(text) // 2
        assert reader.pread(off, 512) == text[off : off + 512]


class TestDifferentialCorpus:
    """zran vs bgzf vs full decode over the 50-stream fuzz corpus."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_all_backends_agree(self, seed, shape):
        body = make_text(seed, n=24_000)
        payload = compress_shape(body, shape)
        gz_blob = gzip_wrap(payload, body)
        bg_blob = bgzf_compress(body)

        zr = SeekableGzipReader(gz_blob, cold_start="sequential", span=8192)
        bg = SeekableGzipReader(bg_blob)
        assert zr.backend == "zran" and bg.backend == "bgzf"
        full = zlib.decompress(payload, -15)
        assert full == body
        probes = [0, 1, len(body) // 2, len(body) - 257, len(body) - 1]
        for off in probes:
            expect = body[off : off + 256]
            assert zr.pread(off, 256) == expect, (seed, shape, off)
            assert bg.pread(off, 256) == expect, (seed, shape, off)
        assert zr.read() == body
        bg.seek(0)
        assert bg.read() == body
