"""Supervision layer: deadlines, bounded retries, pool rebuilding.

Worker functions live at module level so they cross the
``ProcessExecutor`` pickle boundary (REP003); the flaky ones key their
first-attempt failure on a marker file, which works identically for
threads and forked/spawned processes.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.errors import (
    DeadlineExceededError,
    GzipFormatError,
    ReproError,
    WorkerCrashError,
)
from repro.parallel import (
    Outcome,
    ProcessExecutor,
    SerialExecutor,
    SupervisionPolicy,
    ThreadExecutor,
    is_execution_fault,
    make_executor,
)


def _double(x):
    return 2 * x


def _sleepy(arg):
    delay, value = arg
    time.sleep(delay)
    return value


def _flaky_transient(arg):
    """Fails with an execution fault until its marker file exists."""
    marker, value = arg
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise OSError("transient worker failure")
    return value


def _die_once(arg):
    """Kills the whole worker process on the first attempt."""
    marker, value = arg
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(17)
    return value


def _always_oserror(_):
    raise OSError("persistent execution fault")


def _data_error(_):
    raise GzipFormatError("deterministic bad data", stage="container")


class TestPolicy:
    def test_inactive_by_default(self):
        assert not SupervisionPolicy().active
        assert SupervisionPolicy(deadline_s=1.0).active
        assert SupervisionPolicy(max_retries=1).active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionPolicy(**kwargs)

    def test_backoff_is_deterministic_and_capped(self):
        p = SupervisionPolicy(backoff_base_s=0.05, backoff_cap_s=0.2, seed=7)
        assert p.backoff_s(3, 1) == p.backoff_s(3, 1)
        assert p.backoff_s(3, 1) != p.backoff_s(4, 1)
        for attempt in range(1, 12):
            assert 0.0 <= p.backoff_s(0, attempt) <= 0.2
        assert p.backoff_s(0, 0) == 0.0

    def test_is_execution_fault_taxonomy(self):
        assert is_execution_fault(OSError("io"))
        assert is_execution_fault(MemoryError())
        assert is_execution_fault(DeadlineExceededError("late", stage="supervision"))
        assert is_execution_fault(WorkerCrashError("dead", stage="supervision"))
        assert not is_execution_fault(GzipFormatError("bad", stage="container"))


class TestSupervisedMap:
    def test_no_policy_passthrough(self):
        outcomes = ThreadExecutor(2).map_outcomes(_double, [1, 2, 3])
        assert [o.value for o in outcomes] == [2, 4, 6]
        assert all(o.retries == 0 for o in outcomes)

    def test_deadline_ends_hung_worker(self):
        policy = SupervisionPolicy(deadline_s=0.15, backoff_base_s=0.0)
        outcomes = ThreadExecutor(2).map_outcomes(
            _sleepy, [(5.0, "hung"), (0.01, "quick")], policy
        )
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, DeadlineExceededError)
        assert outcomes[0].error.chunk_index == 0
        assert outcomes[1].ok and outcomes[1].value == "quick"

    def test_retry_recovers_transient_fault(self, tmp_path):
        marker = str(tmp_path / "attempt.marker")
        policy = SupervisionPolicy(max_retries=2, backoff_base_s=0.0)
        outcomes = ThreadExecutor(2).map_outcomes(
            _flaky_transient, [(marker, "ok"), (str(tmp_path / "b"), "ok2")], policy
        )
        assert [o.value for o in outcomes] == ["ok", "ok2"]
        assert outcomes[0].retries == 1

    def test_serial_executor_retries_inline(self, tmp_path):
        marker = str(tmp_path / "serial.marker")
        policy = SupervisionPolicy(max_retries=1, backoff_base_s=0.0)
        (outcome,) = SerialExecutor().map_outcomes(
            _flaky_transient, [(marker, 41)], policy
        )
        assert outcome.ok and outcome.value == 41 and outcome.retries == 1

    def test_persistent_fault_exhausts_bounded_budget(self):
        policy = SupervisionPolicy(max_retries=2, backoff_base_s=0.0)
        t0 = time.perf_counter()
        outcomes = ThreadExecutor(2).map_outcomes(
            _always_oserror, [0, 1, 2], policy
        )
        assert time.perf_counter() - t0 < 30  # terminates, never spins
        assert all(not o.ok for o in outcomes)
        assert all(isinstance(o.error, OSError) for o in outcomes)

    def test_data_errors_never_retry(self):
        policy = SupervisionPolicy(max_retries=3, backoff_base_s=0.0)
        outcomes = ThreadExecutor(2).map_outcomes(_data_error, [0, 1], policy)
        for o in outcomes:
            assert isinstance(o.error, GzipFormatError)
            assert o.retries == 0

    def test_broken_process_pool_recovers(self, tmp_path):
        marker = str(tmp_path / "die.marker")
        policy = SupervisionPolicy(max_retries=2, backoff_base_s=0.0)
        outcomes = ProcessExecutor(2).map_outcomes(
            _die_once, [(marker, "revived"), (str(tmp_path / "x"), "fine")], policy
        )
        assert sorted(o.value for o in outcomes) == ["fine", "revived"]
        assert max(o.retries for o in outcomes) >= 1


class TestOutcomePickling:
    def test_success_round_trips(self):
        o = Outcome(index=3, value=b"data", retries=1, wall_time=0.5)
        o2 = pickle.loads(pickle.dumps(o))
        assert o2.index == 3 and o2.value == b"data"
        assert o2.retries == 1 and o2.wall_time == 0.5 and o2.ok

    def test_error_outcome_keeps_structured_context(self):
        err = DeadlineExceededError("late", chunk_index=5, stage="supervision")
        o2 = pickle.loads(pickle.dumps(Outcome(index=5, error=err, retries=2)))
        assert not o2.ok
        assert isinstance(o2.error, DeadlineExceededError)
        assert o2.error.chunk_index == 5
        assert o2.error.stage == "supervision"
        assert isinstance(o2.error, ReproError)


class TestMakeExecutorValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            make_executor("bogus", 2)

    @pytest.mark.parametrize("n", [0, -1])
    def test_nonpositive_workers_rejected(self, n):
        with pytest.raises(ValueError, match="n_workers"):
            make_executor("thread", n)

    def test_valid_kinds_construct(self):
        for kind in ("serial", "thread", "process"):
            assert make_executor(kind, 2) is not None
